// Scenario: the NASA astronomical catalog. Builds every index the paper
// discusses over the same dataset and prints a side-by-side comparison of
// size and query cost for a small set of catalog queries — a condensed
// version of the paper's §5 experiments that runs in a second.
//
// Build & run:   ./build/examples/nasa_catalog [scale]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "datagen/nasa.h"
#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/path_expression.h"
#include "util/table_writer.h"
#include "xml/graph_builder.h"

int main(int argc, char** argv) {
  using namespace mrx;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  Result<std::string> doc = datagen::GenerateNasaDocument(scale, /*seed=*/11);
  if (!doc.ok()) {
    std::cerr << doc.status() << "\n";
    return 1;
  }
  Result<DataGraph> graph = xml::BuildGraphFromXml(*doc);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "NASA catalog: " << graph->num_nodes() << " nodes, "
            << graph->num_edges() << " edges ("
            << graph->num_reference_edges() << " references)\n\n";

  std::vector<PathExpression> queries;
  for (const char* text : {
           "//dataset/title",
           "//reference/source/journal/author/lastname",
           "//tableHead/fields/field/name",
           "//history/revisions/revision/author",
           "//dataset/descriptions/description/para/footnote",
           "//tableLinks/tableLink/dataset/title",
           "//keywords/keyword",
       }) {
    auto p = PathExpression::Parse(text, graph->symbols());
    if (p.ok()) queries.push_back(std::move(p).value());
  }

  TableWriter table({"index", "nodes", "edges", "avg_cost", "precise"});
  auto measure = [&](const std::string& name, auto& index,
                     const IndexGraph& ig) {
    uint64_t cost = 0;
    size_t precise = 0;
    for (const PathExpression& q : queries) {
      QueryResult r = index.Query(q);
      cost += r.stats.total();
      precise += r.precise ? 1 : 0;
    }
    table.AddRowValues(name, ig.num_nodes(), ig.num_edges(),
                       static_cast<double>(cost) / queries.size(),
                       std::to_string(precise) + "/" +
                           std::to_string(queries.size()));
  };

  for (int k : {0, 2, 5}) {
    AkIndex ak(*graph, k);
    measure("A(" + std::to_string(k) + ")", ak, ak.graph());
  }
  {
    OneIndex one(*graph);
    measure("1-index", one, one.graph());
  }
  {
    DkIndex dk = DkIndex::Construct(*graph, queries);
    measure("D(k)-construct", dk, dk.graph());
  }
  {
    DkIndex dk(*graph);
    for (const PathExpression& q : queries) dk.Promote(q);
    measure("D(k)-promote", dk, dk.graph());
  }
  {
    MkIndex mk(*graph);
    for (const PathExpression& q : queries) mk.Refine(q);
    measure("M(k)", mk, mk.graph());
  }
  {
    MStarIndex mstar(*graph);
    for (const PathExpression& q : queries) mstar.Refine(q);
    uint64_t cost = 0;
    size_t precise = 0;
    for (const PathExpression& q : queries) {
      QueryResult r = mstar.QueryTopDown(q);
      cost += r.stats.total();
      precise += r.precise ? 1 : 0;
    }
    table.AddRowValues("M*(k) top-down", mstar.PhysicalNodeCount(),
                       mstar.PhysicalEdgeCount(),
                       static_cast<double>(cost) / queries.size(),
                       std::to_string(precise) + "/" +
                           std::to_string(queries.size()));
  }

  table.RenderText(std::cout);
  std::cout << "\nAdaptive indexes were refined with the seven catalog\n"
               "queries as FUPs; the A(k) family answers them through\n"
               "validation instead.\n";
  return 0;
}
