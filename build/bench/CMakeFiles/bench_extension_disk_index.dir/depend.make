# Empty dependencies file for bench_extension_disk_index.
# This may be replaced when dependencies are built.
