# Empty dependencies file for bench_extension_twig.
# This may be replaced when dependencies are built.
