file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_twig.dir/bench_extension_twig.cc.o"
  "CMakeFiles/bench_extension_twig.dir/bench_extension_twig.cc.o.d"
  "bench_extension_twig"
  "bench_extension_twig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_twig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
