# Empty dependencies file for bench_fig21_22_nasa_len4.
# This may be replaced when dependencies are built.
