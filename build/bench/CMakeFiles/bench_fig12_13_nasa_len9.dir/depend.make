# Empty dependencies file for bench_fig12_13_nasa_len9.
# This may be replaced when dependencies are built.
