# Empty dependencies file for bench_fig10_11_xmark_len9.
# This may be replaced when dependencies are built.
