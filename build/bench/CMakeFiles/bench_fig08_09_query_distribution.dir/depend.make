# Empty dependencies file for bench_fig08_09_query_distribution.
# This may be replaced when dependencies are built.
