file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_09_query_distribution.dir/bench_fig08_09_query_distribution.cc.o"
  "CMakeFiles/bench_fig08_09_query_distribution.dir/bench_fig08_09_query_distribution.cc.o.d"
  "bench_fig08_09_query_distribution"
  "bench_fig08_09_query_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_09_query_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
