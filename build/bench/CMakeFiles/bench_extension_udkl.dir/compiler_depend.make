# Empty compiler generated dependencies file for bench_extension_udkl.
# This may be replaced when dependencies are built.
