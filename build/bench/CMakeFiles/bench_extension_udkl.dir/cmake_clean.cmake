file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_udkl.dir/bench_extension_udkl.cc.o"
  "CMakeFiles/bench_extension_udkl.dir/bench_extension_udkl.cc.o.d"
  "bench_extension_udkl"
  "bench_extension_udkl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_udkl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
