# Empty dependencies file for bench_fig18_20_xmark_len4.
# This may be replaced when dependencies are built.
