# Empty dependencies file for bench_ablation_static_vs_adaptive.
# This may be replaced when dependencies are built.
