file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_growth_xmark_len9.dir/bench_fig14_15_growth_xmark_len9.cc.o"
  "CMakeFiles/bench_fig14_15_growth_xmark_len9.dir/bench_fig14_15_growth_xmark_len9.cc.o.d"
  "bench_fig14_15_growth_xmark_len9"
  "bench_fig14_15_growth_xmark_len9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_growth_xmark_len9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
