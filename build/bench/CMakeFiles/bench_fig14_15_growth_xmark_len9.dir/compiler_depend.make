# Empty compiler generated dependencies file for bench_fig14_15_growth_xmark_len9.
# This may be replaced when dependencies are built.
