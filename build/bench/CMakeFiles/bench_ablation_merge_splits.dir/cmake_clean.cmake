file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merge_splits.dir/bench_ablation_merge_splits.cc.o"
  "CMakeFiles/bench_ablation_merge_splits.dir/bench_ablation_merge_splits.cc.o.d"
  "bench_ablation_merge_splits"
  "bench_ablation_merge_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merge_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
