# Empty dependencies file for bench_ablation_merge_splits.
# This may be replaced when dependencies are built.
