file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_growth_nasa_len9.dir/bench_fig16_17_growth_nasa_len9.cc.o"
  "CMakeFiles/bench_fig16_17_growth_nasa_len9.dir/bench_fig16_17_growth_nasa_len9.cc.o.d"
  "bench_fig16_17_growth_nasa_len9"
  "bench_fig16_17_growth_nasa_len9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_growth_nasa_len9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
