# Empty compiler generated dependencies file for bench_fig16_17_growth_nasa_len9.
# This may be replaced when dependencies are built.
