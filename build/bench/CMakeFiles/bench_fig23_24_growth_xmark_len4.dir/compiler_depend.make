# Empty compiler generated dependencies file for bench_fig23_24_growth_xmark_len4.
# This may be replaced when dependencies are built.
