file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_26_growth_nasa_len4.dir/bench_fig25_26_growth_nasa_len4.cc.o"
  "CMakeFiles/bench_fig25_26_growth_nasa_len4.dir/bench_fig25_26_growth_nasa_len4.cc.o.d"
  "bench_fig25_26_growth_nasa_len4"
  "bench_fig25_26_growth_nasa_len4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_26_growth_nasa_len4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
