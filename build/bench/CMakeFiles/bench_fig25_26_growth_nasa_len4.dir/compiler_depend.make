# Empty compiler generated dependencies file for bench_fig25_26_growth_nasa_len4.
# This may be replaced when dependencies are built.
