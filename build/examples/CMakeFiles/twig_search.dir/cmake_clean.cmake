file(REMOVE_RECURSE
  "CMakeFiles/twig_search.dir/twig_search.cpp.o"
  "CMakeFiles/twig_search.dir/twig_search.cpp.o.d"
  "twig_search"
  "twig_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
