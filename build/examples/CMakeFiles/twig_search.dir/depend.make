# Empty dependencies file for twig_search.
# This may be replaced when dependencies are built.
