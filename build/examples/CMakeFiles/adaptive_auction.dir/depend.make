# Empty dependencies file for adaptive_auction.
# This may be replaced when dependencies are built.
