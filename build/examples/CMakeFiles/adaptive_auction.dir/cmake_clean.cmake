file(REMOVE_RECURSE
  "CMakeFiles/adaptive_auction.dir/adaptive_auction.cpp.o"
  "CMakeFiles/adaptive_auction.dir/adaptive_auction.cpp.o.d"
  "adaptive_auction"
  "adaptive_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
