file(REMOVE_RECURSE
  "CMakeFiles/deep_refinement_test.dir/deep_refinement_test.cc.o"
  "CMakeFiles/deep_refinement_test.dir/deep_refinement_test.cc.o.d"
  "deep_refinement_test"
  "deep_refinement_test.pdb"
  "deep_refinement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
