# Empty compiler generated dependencies file for deep_refinement_test.
# This may be replaced when dependencies are built.
