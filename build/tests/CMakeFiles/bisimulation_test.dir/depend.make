# Empty dependencies file for bisimulation_test.
# This may be replaced when dependencies are built.
