file(REMOVE_RECURSE
  "CMakeFiles/m_star_query_test.dir/m_star_query_test.cc.o"
  "CMakeFiles/m_star_query_test.dir/m_star_query_test.cc.o.d"
  "m_star_query_test"
  "m_star_query_test.pdb"
  "m_star_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m_star_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
