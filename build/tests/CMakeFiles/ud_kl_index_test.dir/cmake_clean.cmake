file(REMOVE_RECURSE
  "CMakeFiles/ud_kl_index_test.dir/ud_kl_index_test.cc.o"
  "CMakeFiles/ud_kl_index_test.dir/ud_kl_index_test.cc.o.d"
  "ud_kl_index_test"
  "ud_kl_index_test.pdb"
  "ud_kl_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_kl_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
