# Empty compiler generated dependencies file for ud_kl_index_test.
# This may be replaced when dependencies are built.
