# Empty dependencies file for m_star_strategies_test.
# This may be replaced when dependencies are built.
