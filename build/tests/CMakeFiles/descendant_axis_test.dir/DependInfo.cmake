
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/descendant_axis_test.cc" "tests/CMakeFiles/descendant_axis_test.dir/descendant_axis_test.cc.o" "gcc" "tests/CMakeFiles/descendant_axis_test.dir/descendant_axis_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mrx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/mrx_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mrx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mrx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mrx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mrx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mrx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mrx_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
