# Empty dependencies file for descendant_axis_test.
# This may be replaced when dependencies are built.
