file(REMOVE_RECURSE
  "CMakeFiles/descendant_axis_test.dir/descendant_axis_test.cc.o"
  "CMakeFiles/descendant_axis_test.dir/descendant_axis_test.cc.o.d"
  "descendant_axis_test"
  "descendant_axis_test.pdb"
  "descendant_axis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descendant_axis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
