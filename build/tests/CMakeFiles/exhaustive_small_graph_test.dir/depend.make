# Empty dependencies file for exhaustive_small_graph_test.
# This may be replaced when dependencies are built.
