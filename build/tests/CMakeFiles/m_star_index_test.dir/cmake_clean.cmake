file(REMOVE_RECURSE
  "CMakeFiles/m_star_index_test.dir/m_star_index_test.cc.o"
  "CMakeFiles/m_star_index_test.dir/m_star_index_test.cc.o.d"
  "m_star_index_test"
  "m_star_index_test.pdb"
  "m_star_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m_star_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
