# Empty compiler generated dependencies file for m_star_index_test.
# This may be replaced when dependencies are built.
