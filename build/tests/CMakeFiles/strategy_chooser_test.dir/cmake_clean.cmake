file(REMOVE_RECURSE
  "CMakeFiles/strategy_chooser_test.dir/strategy_chooser_test.cc.o"
  "CMakeFiles/strategy_chooser_test.dir/strategy_chooser_test.cc.o.d"
  "strategy_chooser_test"
  "strategy_chooser_test.pdb"
  "strategy_chooser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_chooser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
