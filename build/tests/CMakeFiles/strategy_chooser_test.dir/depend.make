# Empty dependencies file for strategy_chooser_test.
# This may be replaced when dependencies are built.
