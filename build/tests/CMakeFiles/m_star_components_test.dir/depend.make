# Empty dependencies file for m_star_components_test.
# This may be replaced when dependencies are built.
