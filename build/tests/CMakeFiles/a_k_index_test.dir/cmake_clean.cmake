file(REMOVE_RECURSE
  "CMakeFiles/a_k_index_test.dir/a_k_index_test.cc.o"
  "CMakeFiles/a_k_index_test.dir/a_k_index_test.cc.o.d"
  "a_k_index_test"
  "a_k_index_test.pdb"
  "a_k_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a_k_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
