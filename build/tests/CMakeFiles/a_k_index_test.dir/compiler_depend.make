# Empty compiler generated dependencies file for a_k_index_test.
# This may be replaced when dependencies are built.
