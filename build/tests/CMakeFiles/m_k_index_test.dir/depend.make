# Empty dependencies file for m_k_index_test.
# This may be replaced when dependencies are built.
