file(REMOVE_RECURSE
  "CMakeFiles/d_k_index_test.dir/d_k_index_test.cc.o"
  "CMakeFiles/d_k_index_test.dir/d_k_index_test.cc.o.d"
  "d_k_index_test"
  "d_k_index_test.pdb"
  "d_k_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d_k_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
