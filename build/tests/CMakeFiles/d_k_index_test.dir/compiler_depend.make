# Empty compiler generated dependencies file for d_k_index_test.
# This may be replaced when dependencies are built.
