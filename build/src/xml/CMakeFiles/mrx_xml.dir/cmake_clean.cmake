file(REMOVE_RECURSE
  "CMakeFiles/mrx_xml.dir/graph_builder.cc.o"
  "CMakeFiles/mrx_xml.dir/graph_builder.cc.o.d"
  "CMakeFiles/mrx_xml.dir/parser.cc.o"
  "CMakeFiles/mrx_xml.dir/parser.cc.o.d"
  "CMakeFiles/mrx_xml.dir/writer.cc.o"
  "CMakeFiles/mrx_xml.dir/writer.cc.o.d"
  "libmrx_xml.a"
  "libmrx_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
