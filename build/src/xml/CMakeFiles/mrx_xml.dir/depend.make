# Empty dependencies file for mrx_xml.
# This may be replaced when dependencies are built.
