file(REMOVE_RECURSE
  "libmrx_xml.a"
)
