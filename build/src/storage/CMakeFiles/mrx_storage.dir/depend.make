# Empty dependencies file for mrx_storage.
# This may be replaced when dependencies are built.
