file(REMOVE_RECURSE
  "libmrx_storage.a"
)
