file(REMOVE_RECURSE
  "CMakeFiles/mrx_storage.dir/disk_m_star_index.cc.o"
  "CMakeFiles/mrx_storage.dir/disk_m_star_index.cc.o.d"
  "CMakeFiles/mrx_storage.dir/graph_io.cc.o"
  "CMakeFiles/mrx_storage.dir/graph_io.cc.o.d"
  "CMakeFiles/mrx_storage.dir/index_io.cc.o"
  "CMakeFiles/mrx_storage.dir/index_io.cc.o.d"
  "libmrx_storage.a"
  "libmrx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
