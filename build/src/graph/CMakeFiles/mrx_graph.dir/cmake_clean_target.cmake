file(REMOVE_RECURSE
  "libmrx_graph.a"
)
