
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/data_graph.cc" "src/graph/CMakeFiles/mrx_graph.dir/data_graph.cc.o" "gcc" "src/graph/CMakeFiles/mrx_graph.dir/data_graph.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/graph/CMakeFiles/mrx_graph.dir/statistics.cc.o" "gcc" "src/graph/CMakeFiles/mrx_graph.dir/statistics.cc.o.d"
  "/root/repo/src/graph/symbol_table.cc" "src/graph/CMakeFiles/mrx_graph.dir/symbol_table.cc.o" "gcc" "src/graph/CMakeFiles/mrx_graph.dir/symbol_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
