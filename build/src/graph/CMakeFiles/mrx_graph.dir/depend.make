# Empty dependencies file for mrx_graph.
# This may be replaced when dependencies are built.
