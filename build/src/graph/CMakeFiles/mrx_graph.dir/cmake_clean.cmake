file(REMOVE_RECURSE
  "CMakeFiles/mrx_graph.dir/data_graph.cc.o"
  "CMakeFiles/mrx_graph.dir/data_graph.cc.o.d"
  "CMakeFiles/mrx_graph.dir/statistics.cc.o"
  "CMakeFiles/mrx_graph.dir/statistics.cc.o.d"
  "CMakeFiles/mrx_graph.dir/symbol_table.cc.o"
  "CMakeFiles/mrx_graph.dir/symbol_table.cc.o.d"
  "libmrx_graph.a"
  "libmrx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
