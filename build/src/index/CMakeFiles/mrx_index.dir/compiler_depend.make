# Empty compiler generated dependencies file for mrx_index.
# This may be replaced when dependencies are built.
