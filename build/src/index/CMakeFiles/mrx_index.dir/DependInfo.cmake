
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/a_k_index.cc" "src/index/CMakeFiles/mrx_index.dir/a_k_index.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/a_k_index.cc.o.d"
  "/root/repo/src/index/bisimulation.cc" "src/index/CMakeFiles/mrx_index.dir/bisimulation.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/bisimulation.cc.o.d"
  "/root/repo/src/index/d_k_index.cc" "src/index/CMakeFiles/mrx_index.dir/d_k_index.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/d_k_index.cc.o.d"
  "/root/repo/src/index/evaluator.cc" "src/index/CMakeFiles/mrx_index.dir/evaluator.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/evaluator.cc.o.d"
  "/root/repo/src/index/index_graph.cc" "src/index/CMakeFiles/mrx_index.dir/index_graph.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/index_graph.cc.o.d"
  "/root/repo/src/index/m_k_index.cc" "src/index/CMakeFiles/mrx_index.dir/m_k_index.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/m_k_index.cc.o.d"
  "/root/repo/src/index/m_star_index.cc" "src/index/CMakeFiles/mrx_index.dir/m_star_index.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/m_star_index.cc.o.d"
  "/root/repo/src/index/m_star_strategies.cc" "src/index/CMakeFiles/mrx_index.dir/m_star_strategies.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/m_star_strategies.cc.o.d"
  "/root/repo/src/index/strategy_chooser.cc" "src/index/CMakeFiles/mrx_index.dir/strategy_chooser.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/strategy_chooser.cc.o.d"
  "/root/repo/src/index/twig_eval.cc" "src/index/CMakeFiles/mrx_index.dir/twig_eval.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/twig_eval.cc.o.d"
  "/root/repo/src/index/ud_kl_index.cc" "src/index/CMakeFiles/mrx_index.dir/ud_kl_index.cc.o" "gcc" "src/index/CMakeFiles/mrx_index.dir/ud_kl_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mrx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mrx_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
