file(REMOVE_RECURSE
  "CMakeFiles/mrx_index.dir/a_k_index.cc.o"
  "CMakeFiles/mrx_index.dir/a_k_index.cc.o.d"
  "CMakeFiles/mrx_index.dir/bisimulation.cc.o"
  "CMakeFiles/mrx_index.dir/bisimulation.cc.o.d"
  "CMakeFiles/mrx_index.dir/d_k_index.cc.o"
  "CMakeFiles/mrx_index.dir/d_k_index.cc.o.d"
  "CMakeFiles/mrx_index.dir/evaluator.cc.o"
  "CMakeFiles/mrx_index.dir/evaluator.cc.o.d"
  "CMakeFiles/mrx_index.dir/index_graph.cc.o"
  "CMakeFiles/mrx_index.dir/index_graph.cc.o.d"
  "CMakeFiles/mrx_index.dir/m_k_index.cc.o"
  "CMakeFiles/mrx_index.dir/m_k_index.cc.o.d"
  "CMakeFiles/mrx_index.dir/m_star_index.cc.o"
  "CMakeFiles/mrx_index.dir/m_star_index.cc.o.d"
  "CMakeFiles/mrx_index.dir/m_star_strategies.cc.o"
  "CMakeFiles/mrx_index.dir/m_star_strategies.cc.o.d"
  "CMakeFiles/mrx_index.dir/strategy_chooser.cc.o"
  "CMakeFiles/mrx_index.dir/strategy_chooser.cc.o.d"
  "CMakeFiles/mrx_index.dir/twig_eval.cc.o"
  "CMakeFiles/mrx_index.dir/twig_eval.cc.o.d"
  "CMakeFiles/mrx_index.dir/ud_kl_index.cc.o"
  "CMakeFiles/mrx_index.dir/ud_kl_index.cc.o.d"
  "libmrx_index.a"
  "libmrx_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
