file(REMOVE_RECURSE
  "libmrx_index.a"
)
