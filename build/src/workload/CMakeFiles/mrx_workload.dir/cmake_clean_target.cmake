file(REMOVE_RECURSE
  "libmrx_workload.a"
)
