# Empty dependencies file for mrx_workload.
# This may be replaced when dependencies are built.
