
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fup_extractor.cc" "src/workload/CMakeFiles/mrx_workload.dir/fup_extractor.cc.o" "gcc" "src/workload/CMakeFiles/mrx_workload.dir/fup_extractor.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/mrx_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/mrx_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/label_paths.cc" "src/workload/CMakeFiles/mrx_workload.dir/label_paths.cc.o" "gcc" "src/workload/CMakeFiles/mrx_workload.dir/label_paths.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mrx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mrx_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mrx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
