file(REMOVE_RECURSE
  "CMakeFiles/mrx_workload.dir/fup_extractor.cc.o"
  "CMakeFiles/mrx_workload.dir/fup_extractor.cc.o.d"
  "CMakeFiles/mrx_workload.dir/generator.cc.o"
  "CMakeFiles/mrx_workload.dir/generator.cc.o.d"
  "CMakeFiles/mrx_workload.dir/label_paths.cc.o"
  "CMakeFiles/mrx_workload.dir/label_paths.cc.o.d"
  "libmrx_workload.a"
  "libmrx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
