file(REMOVE_RECURSE
  "CMakeFiles/mrx_cli.dir/mrx_main.cc.o"
  "CMakeFiles/mrx_cli.dir/mrx_main.cc.o.d"
  "mrx"
  "mrx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
