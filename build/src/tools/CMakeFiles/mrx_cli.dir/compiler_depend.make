# Empty compiler generated dependencies file for mrx_cli.
# This may be replaced when dependencies are built.
