# Empty compiler generated dependencies file for mrx_tools.
# This may be replaced when dependencies are built.
