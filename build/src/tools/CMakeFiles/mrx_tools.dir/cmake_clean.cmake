file(REMOVE_RECURSE
  "CMakeFiles/mrx_tools.dir/cli.cc.o"
  "CMakeFiles/mrx_tools.dir/cli.cc.o.d"
  "libmrx_tools.a"
  "libmrx_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
