file(REMOVE_RECURSE
  "libmrx_tools.a"
)
