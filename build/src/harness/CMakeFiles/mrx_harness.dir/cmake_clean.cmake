file(REMOVE_RECURSE
  "CMakeFiles/mrx_harness.dir/datasets.cc.o"
  "CMakeFiles/mrx_harness.dir/datasets.cc.o.d"
  "CMakeFiles/mrx_harness.dir/experiment.cc.o"
  "CMakeFiles/mrx_harness.dir/experiment.cc.o.d"
  "CMakeFiles/mrx_harness.dir/report.cc.o"
  "CMakeFiles/mrx_harness.dir/report.cc.o.d"
  "libmrx_harness.a"
  "libmrx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
