# Empty dependencies file for mrx_harness.
# This may be replaced when dependencies are built.
