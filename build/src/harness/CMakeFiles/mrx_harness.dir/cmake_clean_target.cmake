file(REMOVE_RECURSE
  "libmrx_harness.a"
)
