
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/data_evaluator.cc" "src/query/CMakeFiles/mrx_query.dir/data_evaluator.cc.o" "gcc" "src/query/CMakeFiles/mrx_query.dir/data_evaluator.cc.o.d"
  "/root/repo/src/query/path_expression.cc" "src/query/CMakeFiles/mrx_query.dir/path_expression.cc.o" "gcc" "src/query/CMakeFiles/mrx_query.dir/path_expression.cc.o.d"
  "/root/repo/src/query/twig.cc" "src/query/CMakeFiles/mrx_query.dir/twig.cc.o" "gcc" "src/query/CMakeFiles/mrx_query.dir/twig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mrx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
