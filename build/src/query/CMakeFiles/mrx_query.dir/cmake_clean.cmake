file(REMOVE_RECURSE
  "CMakeFiles/mrx_query.dir/data_evaluator.cc.o"
  "CMakeFiles/mrx_query.dir/data_evaluator.cc.o.d"
  "CMakeFiles/mrx_query.dir/path_expression.cc.o"
  "CMakeFiles/mrx_query.dir/path_expression.cc.o.d"
  "CMakeFiles/mrx_query.dir/twig.cc.o"
  "CMakeFiles/mrx_query.dir/twig.cc.o.d"
  "libmrx_query.a"
  "libmrx_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
