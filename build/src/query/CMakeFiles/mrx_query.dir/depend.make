# Empty dependencies file for mrx_query.
# This may be replaced when dependencies are built.
