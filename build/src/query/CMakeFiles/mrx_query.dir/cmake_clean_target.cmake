file(REMOVE_RECURSE
  "libmrx_query.a"
)
