# Empty compiler generated dependencies file for mrx_util.
# This may be replaced when dependencies are built.
