file(REMOVE_RECURSE
  "libmrx_util.a"
)
