file(REMOVE_RECURSE
  "CMakeFiles/mrx_util.dir/status.cc.o"
  "CMakeFiles/mrx_util.dir/status.cc.o.d"
  "CMakeFiles/mrx_util.dir/string_util.cc.o"
  "CMakeFiles/mrx_util.dir/string_util.cc.o.d"
  "CMakeFiles/mrx_util.dir/table_writer.cc.o"
  "CMakeFiles/mrx_util.dir/table_writer.cc.o.d"
  "libmrx_util.a"
  "libmrx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
