
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dtd.cc" "src/datagen/CMakeFiles/mrx_datagen.dir/dtd.cc.o" "gcc" "src/datagen/CMakeFiles/mrx_datagen.dir/dtd.cc.o.d"
  "/root/repo/src/datagen/dtd_generator.cc" "src/datagen/CMakeFiles/mrx_datagen.dir/dtd_generator.cc.o" "gcc" "src/datagen/CMakeFiles/mrx_datagen.dir/dtd_generator.cc.o.d"
  "/root/repo/src/datagen/nasa.cc" "src/datagen/CMakeFiles/mrx_datagen.dir/nasa.cc.o" "gcc" "src/datagen/CMakeFiles/mrx_datagen.dir/nasa.cc.o.d"
  "/root/repo/src/datagen/xmark.cc" "src/datagen/CMakeFiles/mrx_datagen.dir/xmark.cc.o" "gcc" "src/datagen/CMakeFiles/mrx_datagen.dir/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
