file(REMOVE_RECURSE
  "CMakeFiles/mrx_datagen.dir/dtd.cc.o"
  "CMakeFiles/mrx_datagen.dir/dtd.cc.o.d"
  "CMakeFiles/mrx_datagen.dir/dtd_generator.cc.o"
  "CMakeFiles/mrx_datagen.dir/dtd_generator.cc.o.d"
  "CMakeFiles/mrx_datagen.dir/nasa.cc.o"
  "CMakeFiles/mrx_datagen.dir/nasa.cc.o.d"
  "CMakeFiles/mrx_datagen.dir/xmark.cc.o"
  "CMakeFiles/mrx_datagen.dir/xmark.cc.o.d"
  "libmrx_datagen.a"
  "libmrx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
