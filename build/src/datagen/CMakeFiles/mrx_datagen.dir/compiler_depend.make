# Empty compiler generated dependencies file for mrx_datagen.
# This may be replaced when dependencies are built.
