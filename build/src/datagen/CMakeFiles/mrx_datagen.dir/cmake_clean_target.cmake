file(REMOVE_RECURSE
  "libmrx_datagen.a"
)
