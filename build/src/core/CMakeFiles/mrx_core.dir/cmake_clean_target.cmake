file(REMOVE_RECURSE
  "libmrx_core.a"
)
