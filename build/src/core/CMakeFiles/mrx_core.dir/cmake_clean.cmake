file(REMOVE_RECURSE
  "CMakeFiles/mrx_core.dir/session.cc.o"
  "CMakeFiles/mrx_core.dir/session.cc.o.d"
  "libmrx_core.a"
  "libmrx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
