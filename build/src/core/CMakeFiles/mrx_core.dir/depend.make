# Empty dependencies file for mrx_core.
# This may be replaced when dependencies are built.
