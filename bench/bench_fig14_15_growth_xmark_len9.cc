// Reproduces Figures 14 and 15: index node/edge growth of the
// incrementally refined indexes (D(k)-promote, M(k), M*(k)) as FUPs are
// added, sampled every 50 queries, XMark, max query length 9.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 9));

  std::vector<harness::IndexRunResult> runs;
  runs.push_back(driver.RunDkPromote(50));
  runs.push_back(driver.RunMk(50));
  runs.push_back(driver.RunMStar(50));

  harness::PrintGrowth(
      std::cout,
      "Figures 14+15: index size growth over queries, XMark, max length 9",
      runs);
  return 0;
}
