// Reproduces Figures 23 and 24: index size growth over queries, XMark,
// max query length 4.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 4));

  std::vector<harness::IndexRunResult> runs;
  runs.push_back(driver.RunDkPromote(50));
  runs.push_back(driver.RunMk(50));
  runs.push_back(driver.RunMStar(50));

  harness::PrintGrowth(
      std::cout,
      "Figures 23+24: index size growth over queries, XMark, max length 4",
      runs);
  return 0;
}
