// Scale tier: streamed large-graph generation + serial-vs-pooled static
// hierarchy build and batch refinement, at node targets the string->parse
// path cannot reach comfortably (100k..10M). For every tier:
//
//   - the graph is generated straight into CSR form (DirectGraphSink; the
//     serialized document never exists),
//   - the pooled k-bisimulation partition is verified byte-identical to
//     the serial one BEFORE any pooled timing is reported (the speedups
//     are only meaningful under the determinism contract,
//     docs/PERFORMANCE.md),
//   - serial and 2/4/8-thread BuildStaticHierarchy and RefineBatch are
//     timed best-of-reps.
//
// Emits BENCH_scale_build.json. CI runs `--tiers 500000 --kmax 6 --reps 2`
// and gates on the 4-thread speedup; locally the default tier sweep honors
// MRX_SCALE. `hardware_concurrency` is reported so a 1-core container's
// flat numbers are recognizable as hardware-bound, not regression.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "index/bisimulation.h"
#include "index/m_star_index.h"
#include "query/path_expression.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace {

using namespace mrx;

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double BestOf(int reps, const std::function<void()>& fn) {
  double best = TimeMs(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, TimeMs(fn));
  return best;
}

/// Label-path expressions actually present in `g` (one per distinct
/// parent/child label pair, extended to length 2 where possible) — the
/// FUP batch driving the refinement timing.
std::vector<PathExpression> SamplePaths(const DataGraph& g, size_t limit) {
  std::vector<PathExpression> out;
  std::vector<std::string> seen;
  for (NodeId u = 0; u < g.num_nodes() && out.size() < limit; ++u) {
    for (NodeId v : g.children(u)) {
      std::string text = std::string(g.label_name(u)) + "/" +
                         std::string(g.label_name(v));
      for (NodeId w : g.children(v)) {
        text += "/" + std::string(g.label_name(w));
        break;
      }
      if (std::find(seen.begin(), seen.end(), text) != seen.end()) continue;
      seen.push_back(text);
      auto parsed = PathExpression::Parse(text, g.symbols());
      if (parsed.ok()) out.push_back(*std::move(parsed));
      if (out.size() >= limit) break;
    }
  }
  return out;
}

struct TierResult {
  std::string dataset;
  std::string tier;
  size_t nodes = 0;
  size_t edges = 0;
  double gen_ms = 0;
  double serial_ms = 0;
  double t2_ms = 0, t4_ms = 0, t8_ms = 0;
  double refine_serial_ms = 0;
  double refine_t4_ms = 0;
};

TierResult RunTier(const std::string& dataset, const std::string& tier,
                   const std::function<Result<DataGraph>()>& build, int k_max,
                   int reps) {
  TierResult result;
  result.dataset = dataset;
  result.tier = tier;

  Result<DataGraph> graph(Status::Internal("not built"));
  result.gen_ms = TimeMs([&] { graph = build(); });
  if (!graph.ok()) {
    std::cerr << "FATAL: " << dataset << "/" << tier
              << " generation failed: " << graph.status().message() << "\n";
    std::exit(1);
  }
  const DataGraph& g = *graph;
  result.nodes = g.num_nodes();
  result.edges = g.num_edges();

  const BisimulationPartition serial_part = ComputeKBisimulation(g, k_max);
  result.serial_ms = BestOf(reps, [&] {
    MStarIndex index = MStarIndex::BuildStaticHierarchy(g, k_max);
    if (index.num_components() == 0) std::exit(1);
  });

  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    // Determinism gate: the pooled partition must be byte-identical to
    // the serial one, or the timings below compare different work.
    const BisimulationPartition pooled =
        ComputeKBisimulation(g, k_max, RefineOptions{&pool});
    if (pooled.block_of != serial_part.block_of ||
        pooled.num_blocks != serial_part.num_blocks) {
      std::cerr << "FATAL: " << dataset << "/" << tier
                << " partition diverges at " << threads << " threads\n";
      std::exit(1);
    }
    const double ms = BestOf(reps, [&] {
      MStarIndex index =
          MStarIndex::BuildStaticHierarchy(g, k_max, RefineOptions{&pool});
      if (index.num_components() == 0) std::exit(1);
    });
    if (threads == 2) result.t2_ms = ms;
    if (threads == 4) result.t4_ms = ms;
    if (threads == 8) result.t8_ms = ms;
  }

  // Batch refinement on a fresh A(0) index (Clone keeps the timing to
  // RefineBatch itself; the clone happens outside the clock).
  const std::vector<PathExpression> fups = SamplePaths(g, 8);
  const MStarIndex base(g);
  auto refine_once = [&](ThreadPool* pool) {
    MStarIndex index = base.Clone();
    index.set_thread_pool(pool);
    return TimeMs([&] { index.RefineBatch(fups); });
  };
  result.refine_serial_ms = refine_once(nullptr);
  for (int r = 1; r < reps; ++r) {
    result.refine_serial_ms =
        std::min(result.refine_serial_ms, refine_once(nullptr));
  }
  {
    ThreadPool pool(4);
    result.refine_t4_ms = refine_once(&pool);
    for (int r = 1; r < reps; ++r) {
      result.refine_t4_ms = std::min(result.refine_t4_ms, refine_once(&pool));
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int k_max = 6;
  int reps = 2;
  std::string out_path = "BENCH_scale_build.json";
  std::vector<size_t> tier_nodes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kmax") {
      k_max = std::atoi(next().c_str());
    } else if (arg == "--reps") {
      reps = std::atoi(next().c_str());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--tiers") {
      std::string list = next();
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        tier_nodes.push_back(
            static_cast<size_t>(std::atoll(list.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else {
      std::cerr << "usage: bench_scale_build [--tiers n1,n2,...] [--kmax K]"
                   " [--reps R] [--out file]\n";
      return 2;
    }
  }

  std::vector<harness::ScaleTier> tiers;
  if (tier_nodes.empty()) {
    tiers = harness::ScaleBenchTiers();
  } else {
    for (size_t n : tier_nodes) {
      tiers.push_back(harness::ScaleTier{harness::ScaleTierName(n), n});
    }
  }

  std::vector<TierResult> results;
  for (const harness::ScaleTier& tier : tiers) {
    results.push_back(RunTier(
        "xmark", tier.name,
        [&] {
          return harness::BuildXMarkGraphStreamed(
              harness::XMarkScaleForNodes(tier.nodes));
        },
        k_max, reps));
    results.push_back(RunTier(
        "dtd_random", tier.name,
        [&] { return harness::BuildDtdRandomGraphStreamed(tier.nodes); },
        k_max, reps));
  }

  TableWriter table({"dataset", "tier", "nodes", "gen_ms", "serial_ms",
                     "t2_ms", "t4_ms", "t8_ms", "t4_speedup", "t8_speedup",
                     "refine_t4_speedup"});
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back(
      "hardware_concurrency",
      static_cast<double>(std::thread::hardware_concurrency()));
  for (const TierResult& r : results) {
    const double s4 = r.t4_ms > 0 ? r.serial_ms / r.t4_ms : 0;
    const double s8 = r.t8_ms > 0 ? r.serial_ms / r.t8_ms : 0;
    const double rs4 =
        r.refine_t4_ms > 0 ? r.refine_serial_ms / r.refine_t4_ms : 0;
    table.AddRowValues(r.dataset, r.tier, r.nodes, r.gen_ms, r.serial_ms,
                       r.t2_ms, r.t4_ms, r.t8_ms, s4, s8, rs4);
    const std::string prefix = r.dataset + "_" + r.tier + "_";
    metrics.emplace_back(prefix + "nodes", static_cast<double>(r.nodes));
    metrics.emplace_back(prefix + "edges", static_cast<double>(r.edges));
    metrics.emplace_back(prefix + "gen_ms", r.gen_ms);
    metrics.emplace_back(prefix + "serial_ms", r.serial_ms);
    metrics.emplace_back(prefix + "t2_ms", r.t2_ms);
    metrics.emplace_back(prefix + "t4_ms", r.t4_ms);
    metrics.emplace_back(prefix + "t8_ms", r.t8_ms);
    metrics.emplace_back(prefix + "t4_speedup", s4);
    metrics.emplace_back(prefix + "t8_speedup", s8);
    metrics.emplace_back(prefix + "refine_serial_ms", r.refine_serial_ms);
    metrics.emplace_back(prefix + "refine_t4_ms", r.refine_t4_ms);
    metrics.emplace_back(prefix + "refine_t4_speedup", rs4);
  }

  std::cout << "== Scale-tier build (k_max=" << k_max
            << "; streamed generation, pooled partitions verified identical"
               " to serial; hardware_concurrency="
            << std::thread::hardware_concurrency() << ") ==\n";
  table.RenderText(std::cout);

  std::ofstream bench(out_path, std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "scale_build", metrics);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
