// Ablation (DESIGN.md §6.1): the "merge unnecessary splits" step of
// REFINENODE (the vrest of §3.2). With merging disabled, M(k) splits by
// every parent and keeps every piece — reproducing D(k)-PROMOTE's
// over-refinement for irrelevant data nodes. Reports final index sizes and
// rerun costs on both datasets.

#include "bench/bench_common.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "query/data_evaluator.h"
#include "util/table_writer.h"

namespace {

void RunDataset(const std::string& name) {
  using namespace mrx;
  DataGraph g = bench::LoadDataset(name);
  auto workload = bench::MakeWorkload(g, 9);

  MkIndex with_merge(g);
  MkIndex without_merge(g);
  without_merge.set_merge_unnecessary_splits(false);
  DkIndex dk_promote(g);
  for (const PathExpression& q : workload) {
    with_merge.Refine(q);
    without_merge.Refine(q);
    dk_promote.Promote(q);
  }

  auto avg_cost = [&](auto& index) {
    uint64_t total = 0;
    for (const PathExpression& q : workload) {
      total += index.Query(q).stats.total();
    }
    return static_cast<double>(total) / workload.size();
  };

  TableWriter table({"variant", "nodes", "edges", "avg_cost"});
  table.AddRowValues("M(k) with merge", with_merge.graph().num_nodes(),
                     with_merge.graph().num_edges(), avg_cost(with_merge));
  table.AddRowValues("M(k) without merge (ablated)",
                     without_merge.graph().num_nodes(),
                     without_merge.graph().num_edges(),
                     avg_cost(without_merge));
  table.AddRowValues("D(k)-promote (reference)",
                     dk_promote.graph().num_nodes(),
                     dk_promote.graph().num_edges(), avg_cost(dk_promote));
  std::cout << "== Ablation: merge-unnecessary-splits on " << name
            << " ==\n";
  table.RenderText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  RunDataset("xmark");
  RunDataset("nasa");
  return 0;
}
