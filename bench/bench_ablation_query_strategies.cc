// Ablation (DESIGN.md §6.2): compares the three M*(k) evaluation
// strategies of paper §4.1 — naive, top-down, and subpath pre-filtering —
// by average cost per query length, on the XMark dataset after the index
// has been refined for the length-9 workload.

#include <map>

#include "bench/bench_common.h"
#include "index/m_star_index.h"
#include "util/table_writer.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  auto workload = bench::MakeWorkload(g, 9);

  MStarIndex index(g);
  for (const PathExpression& q : workload) index.Refine(q);

  struct Bucket {
    uint64_t naive = 0;
    uint64_t topdown = 0;
    uint64_t prefilter = 0;
    uint64_t bottomup = 0;
    uint64_t hybrid = 0;
    size_t count = 0;
  };
  std::map<size_t, Bucket> by_length;
  for (const PathExpression& q : workload) {
    Bucket& b = by_length[q.length()];
    b.naive += index.QueryNaive(q).stats.total();
    b.topdown += index.QueryTopDown(q).stats.total();
    // Pre-filter on the suffix half of the expression (a reasonable
    // static choice; picking the subpath is a query-optimization problem
    // the paper leaves open).
    size_t begin = q.num_steps() / 2;
    b.prefilter +=
        index.QueryWithPrefilter(q, begin, q.num_steps() - 1).stats.total();
    b.bottomup += index.QueryBottomUp(q).stats.total();
    b.hybrid += index.QueryHybrid(q).stats.total();
    ++b.count;
  }

  TableWriter table({"query_length", "queries", "naive", "topdown",
                     "prefilter", "bottomup", "hybrid"});
  for (const auto& [len, b] : by_length) {
    table.AddRowValues(len, b.count,
                       static_cast<double>(b.naive) / b.count,
                       static_cast<double>(b.topdown) / b.count,
                       static_cast<double>(b.prefilter) / b.count,
                       static_cast<double>(b.bottomup) / b.count,
                       static_cast<double>(b.hybrid) / b.count);
  }
  std::cout << "== Ablation: M*(k) query strategies, avg cost per query "
               "(XMark, len 9) ==\n";
  table.RenderText(std::cout);
  std::cout << "\nThe paper (§4.1) predicts bottom-up/hybrid lose to "
               "top-down because every\ndescent to a finer component "
               "re-checks the suffix downward; the bottomup\ncolumn "
               "quantifies that overhead.\n";
  return 0;
}
