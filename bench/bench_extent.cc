// Extent-representation bench (ISSUE 9 gate): physical bytes and intersect
// throughput of every extent representation over the A(0..k_max) hierarchy
// levels of streamed XMark graphs — the exact extent population an M*(k)
// static build stores. For every tier:
//
//   - the level partitions are computed once and their per-block node sets
//     re-encoded under each forced representation (vector / delta / hybrid)
//     plus the auto heuristic, summing physical bytes;
//   - intersect throughput is measured over the largest extents (self
//     pairs exercise full-overlap merges, consecutive pairs the disjoint
//     skew a partition produces), in logical elements per second — the §5
//     accounting, so compressed and plain runs are directly comparable;
//   - every compressed encoding is verified to materialize back to the
//     oracle vector BEFORE any timing is reported.
//
// Emits BENCH_extent.json. CI runs the 2M tier and gates on the auto
// heuristic: total extent bytes must be <= 60% of the vector baseline and
// intersect throughput within 10% of it (docs/PERFORMANCE.md "Extent
// representations").

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/datasets.h"
#include "harness/report.h"
#include "index/bisimulation.h"
#include "index/extent.h"
#include "index/extent_ops.h"
#include "util/table_writer.h"

namespace {

using namespace mrx;

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// One representation's numbers at one tier.
struct RepResult {
  std::string rep;
  size_t bytes = 0;
  double encode_ms = 0;
  double intersect_melems_s = 0;  ///< Logical Melems/s over the workload.
};

/// The per-block node sets of A(0)..A(k_max) — every extent a static
/// M*(k) hierarchy of depth k_max stores.
std::vector<std::vector<NodeId>> HierarchyExtents(const DataGraph& g,
                                                  int k_max) {
  std::vector<std::vector<NodeId>> out;
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  for (int i = 0; i <= k_max; ++i) {
    if (i > 0) RefineBisimulationRound(g, &part);
    std::vector<std::vector<NodeId>> staged(part.num_blocks);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      staged[part.block_of[n]].push_back(n);
    }
    for (auto& block : staged) out.push_back(std::move(block));
  }
  return out;
}

RepResult RunRep(const std::string& rep_name,
                 const std::vector<std::vector<NodeId>>& blocks,
                 const std::vector<size_t>& big, int reps) {
  RepResult result;
  result.rep = rep_name;

  // Encode the whole population under this representation ("auto" = the
  // heuristic; everything else forced), verifying losslessness.
  std::vector<Extent> extents;
  result.encode_ms = TimeMs([&] {
    extents.reserve(blocks.size());
    for (const std::vector<NodeId>& block : blocks) {
      if (rep_name == "auto") {
        extents.push_back(Extent::FromSorted(std::vector<NodeId>(block)));
      } else if (rep_name == "vector") {
        extents.push_back(Extent::FromSortedAs(std::vector<NodeId>(block),
                                               ExtentRep::kSortedVector));
      } else if (rep_name == "delta") {
        extents.push_back(Extent::FromSortedAs(std::vector<NodeId>(block),
                                               ExtentRep::kDeltaPacked));
      } else {
        extents.push_back(Extent::FromSortedAs(std::vector<NodeId>(block),
                                               ExtentRep::kHybridBitmap));
      }
    }
  });
  for (size_t i = 0; i < blocks.size(); ++i) {
    result.bytes += extents[i].physical_bytes();
    if (extents[i] != blocks[i]) {
      std::cerr << "FATAL: " << rep_name << " encoding of block " << i
                << " is lossy\n";
      std::exit(1);
    }
  }

  // Intersect workload over the largest extents: self pairs (full
  // overlap) and consecutive pairs (disjoint — partition blocks never
  // share members). Logical elements = |a| + |b| per call, exactly what
  // the §5 cost hooks charge.
  size_t logical = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    logical += 2 * extents[big[i]].size();
    logical += extents[big[i]].size() +
               extents[big[(i + 1) % big.size()]].size();
  }
  double best_ms = 0;
  size_t guard = 0;  // Defeats dead-code elimination.
  for (int r = 0; r < reps; ++r) {
    const double ms = TimeMs([&] {
      for (size_t i = 0; i < big.size(); ++i) {
        const Extent& a = extents[big[i]];
        const Extent& b = extents[big[(i + 1) % big.size()]];
        guard += Intersect(a, a).size();
        guard += Intersect(a, b).size();
      }
    });
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  if (guard == 0 && !big.empty()) std::cerr << "";  // Keep `guard` live.
  result.intersect_melems_s =
      best_ms > 0 ? static_cast<double>(logical) / best_ms / 1e3 : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int k_max = 4;
  int reps = 3;
  std::string out_path = "BENCH_extent.json";
  std::vector<size_t> tier_nodes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kmax") {
      k_max = std::atoi(next().c_str());
    } else if (arg == "--reps") {
      reps = std::atoi(next().c_str());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--tiers") {
      std::string list = next();
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        tier_nodes.push_back(static_cast<size_t>(
            std::atoll(list.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else {
      std::cerr << "usage: bench_extent [--tiers n1,n2,...] [--kmax K]"
                   " [--reps R] [--out file]\n";
      return 2;
    }
  }
  if (tier_nodes.empty()) tier_nodes = {100000, 500000, 2000000};

  TableWriter table({"tier", "nodes", "extents", "rep", "bytes", "MiB",
                     "vs_vector", "encode_ms", "intersect_melems_s"});
  std::vector<std::pair<std::string, double>> metrics;

  for (size_t nodes : tier_nodes) {
    const std::string tier = harness::ScaleTierName(nodes);
    Result<DataGraph> graph =
        harness::BuildXMarkGraphStreamed(harness::XMarkScaleForNodes(nodes));
    if (!graph.ok()) {
      std::cerr << "FATAL: " << tier
                << " generation failed: " << graph.status().message() << "\n";
      return 1;
    }
    const std::vector<std::vector<NodeId>> blocks =
        HierarchyExtents(*graph, k_max);

    // The 32 largest extents drive the intersect workload.
    std::vector<size_t> by_size(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
      return blocks[a].size() > blocks[b].size();
    });
    by_size.resize(std::min<size_t>(32, by_size.size()));

    double vector_bytes = 0, vector_melems = 0;
    for (const char* rep : {"vector", "delta", "hybrid", "auto"}) {
      const RepResult r = RunRep(rep, blocks, by_size, reps);
      if (r.rep == "vector") {
        vector_bytes = static_cast<double>(r.bytes);
        vector_melems = r.intersect_melems_s;
      }
      const double ratio =
          vector_bytes > 0 ? static_cast<double>(r.bytes) / vector_bytes : 0;
      table.AddRowValues(tier, graph->num_nodes(), blocks.size(), r.rep,
                         r.bytes, static_cast<double>(r.bytes) / (1 << 20),
                         ratio, r.encode_ms, r.intersect_melems_s);
      const std::string prefix = tier + "_" + r.rep + "_";
      metrics.emplace_back(prefix + "bytes", static_cast<double>(r.bytes));
      metrics.emplace_back(prefix + "bytes_vs_vector", ratio);
      metrics.emplace_back(prefix + "encode_ms", r.encode_ms);
      metrics.emplace_back(prefix + "intersect_melems_s",
                           r.intersect_melems_s);
      if (vector_melems > 0) {
        metrics.emplace_back(prefix + "intersect_vs_vector",
                             r.intersect_melems_s / vector_melems);
      }
    }
    metrics.emplace_back(tier + "_nodes",
                         static_cast<double>(graph->num_nodes()));
    metrics.emplace_back(tier + "_extents",
                         static_cast<double>(blocks.size()));
  }

  std::cout << "== Extent representations over A(0.." << k_max
            << ") hierarchy extents (XMark streamed; every encoding"
               " verified lossless before timing) ==\n";
  table.RenderText(std::cout);

  std::ofstream bench(out_path, std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "extent", metrics);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
