// Extent-representation bench (ISSUE 9 + ISSUE 10 gates): physical bytes
// and set-algebra throughput of every extent representation over the
// A(0..k_max) hierarchy levels of streamed XMark graphs — the exact extent
// population an M*(k) static build stores. For every tier:
//
//   - the level partitions are computed once and their per-block node sets
//     re-encoded under each forced representation (vector / delta / hybrid)
//     plus the auto heuristic, summing physical bytes;
//   - intersect and difference throughput is measured over the largest
//     extents (self pairs exercise full-overlap merges, consecutive pairs
//     the disjoint skew a partition produces), in logical elements per
//     second — the §5 accounting, so compressed and plain runs are
//     directly comparable;
//   - k-way scenarios run IntersectMany over nested 2-/4-/8-operand
//     chains built from the same big extents (each coarser operand unions
//     one more partition block — the candidate-set shape an M*(k)
//     ancestor trace produces), so the size-ordered fold is measured on
//     the workload it was designed for;
//   - two in-run baselines reproduce the pre-vectorization kernels: delta
//     decode-then-merge (materialize both operands, then intersect the
//     vectors — how delta pairs were handled before the native
//     stream kernels) and forced-scalar hybrid (same code, SIMD dispatch
//     capped at scalar);
//   - every compressed encoding is verified to materialize back to the
//     oracle vector BEFORE any timing is reported.
//
// Emits BENCH_extent.json, including the active/detected SIMD levels so
// CI can key its gates on what the hardware actually ran (scalar-only
// builds are exempt from the SIMD speedup gates). CI runs the 2M tier and
// gates on: auto bytes <= 60% of vector, auto throughput >= 0.85x the best
// forced representation, native delta >= 1.5x decode-then-merge, and
// vectorized hybrid >= 1.3x forced-scalar hybrid (docs/PERFORMANCE.md
// "Extent representations").

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/datasets.h"
#include "harness/report.h"
#include "index/bisimulation.h"
#include "index/extent.h"
#include "index/extent_ops.h"
#include "util/cpu_features.h"
#include "util/table_writer.h"

namespace {

using namespace mrx;

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// One representation's numbers at one tier.
struct RepResult {
  std::string rep;
  size_t bytes = 0;
  double encode_ms = 0;
  double intersect_melems_s = 0;   ///< Logical Melems/s over the workload.
  double difference_melems_s = 0;  ///< Same accounting, Difference calls.
  /// (arity, Melems/s) per k-way scenario.
  std::vector<std::pair<size_t, double>> kway;
};

/// The per-block node sets of A(0)..A(k_max) — every extent a static
/// M*(k) hierarchy of depth k_max stores.
std::vector<std::vector<NodeId>> HierarchyExtents(const DataGraph& g,
                                                  int k_max) {
  std::vector<std::vector<NodeId>> out;
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  for (int i = 0; i <= k_max; ++i) {
    if (i > 0) RefineBisimulationRound(g, &part);
    std::vector<std::vector<NodeId>> staged(part.num_blocks);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      staged[part.block_of[n]].push_back(n);
    }
    for (auto& block : staged) out.push_back(std::move(block));
  }
  return out;
}

/// Nested operand chains for the k-way scenarios: chains[c][0] is the
/// union of `arity` partition blocks and each following operand drops one
/// block, so operand j strictly contains operand j+1 and the intersection
/// is exactly the last (smallest) operand — both a correctness oracle and
/// the candidate-set shape M*(k) ancestor traces produce.
struct KwayScenario {
  size_t arity;
  std::vector<std::vector<std::vector<NodeId>>> chains;
};

std::vector<KwayScenario> BuildKwayScenarios(
    const std::vector<std::vector<NodeId>>& blocks,
    const std::vector<size_t>& big) {
  std::vector<KwayScenario> out;
  if (big.empty()) return out;
  for (const size_t arity : {2, 4, 8}) {
    KwayScenario scenario;
    scenario.arity = arity;
    for (size_t c = 0; c < 4; ++c) {
      std::vector<std::vector<NodeId>> ops(arity);
      std::vector<NodeId> acc;
      for (size_t j = 0; j < arity; ++j) {
        const std::vector<NodeId>& blk =
            blocks[big[(c * arity + j) % big.size()]];
        acc.insert(acc.end(), blk.begin(), blk.end());
        SortUnique(&acc);
        ops[arity - 1 - j] = acc;
      }
      scenario.chains.push_back(std::move(ops));
    }
    out.push_back(std::move(scenario));
  }
  return out;
}

Extent EncodeAs(const std::string& rep_name, std::vector<NodeId> sorted) {
  if (rep_name == "auto") return Extent::FromSorted(std::move(sorted));
  if (rep_name == "vector") {
    return Extent::FromSortedAs(std::move(sorted), ExtentRep::kSortedVector);
  }
  if (rep_name == "delta") {
    return Extent::FromSortedAs(std::move(sorted), ExtentRep::kDeltaPacked);
  }
  return Extent::FromSortedAs(std::move(sorted), ExtentRep::kHybridBitmap);
}

RepResult RunRep(const std::string& rep_name,
                 const std::vector<std::vector<NodeId>>& blocks,
                 const std::vector<size_t>& big,
                 const std::vector<KwayScenario>& kway_scenarios, int reps) {
  RepResult result;
  result.rep = rep_name;

  // Encode the whole population under this representation ("auto" = the
  // heuristic; everything else forced), verifying losslessness.
  std::vector<Extent> extents;
  result.encode_ms = TimeMs([&] {
    extents.reserve(blocks.size());
    for (const std::vector<NodeId>& block : blocks) {
      extents.push_back(EncodeAs(rep_name, std::vector<NodeId>(block)));
    }
  });
  for (size_t i = 0; i < blocks.size(); ++i) {
    result.bytes += extents[i].physical_bytes();
    if (extents[i] != blocks[i]) {
      std::cerr << "FATAL: " << rep_name << " encoding of block " << i
                << " is lossy\n";
      std::exit(1);
    }
  }

  // Pairwise workload over the largest extents: self pairs (full overlap)
  // and consecutive pairs (disjoint — partition blocks never share
  // members). Logical elements = |a| + |b| per call, exactly what the §5
  // cost hooks charge.
  size_t logical = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    logical += 2 * extents[big[i]].size();
    logical += extents[big[i]].size() +
               extents[big[(i + 1) % big.size()]].size();
  }
  size_t guard = 0;  // Defeats dead-code elimination.
  double best_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double ms = TimeMs([&] {
      for (size_t i = 0; i < big.size(); ++i) {
        const Extent& a = extents[big[i]];
        const Extent& b = extents[big[(i + 1) % big.size()]];
        guard += Intersect(a, a).size();
        guard += Intersect(a, b).size();
      }
    });
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  result.intersect_melems_s =
      best_ms > 0 ? static_cast<double>(logical) / best_ms / 1e3 : 0;

  // Difference over the same pairs, both operand orders (a \ b copies a;
  // b \ a copies b — disjoint inputs make both sides bulk-tail paths).
  best_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double ms = TimeMs([&] {
      for (size_t i = 0; i < big.size(); ++i) {
        const Extent& a = extents[big[i]];
        const Extent& b = extents[big[(i + 1) % big.size()]];
        guard += Difference(a, b).size();
        guard += Difference(b, a).size();
      }
    });
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  result.difference_melems_s =
      best_ms > 0 ? static_cast<double>(logical) / best_ms / 1e3 : 0;

  // K-way scenarios. The nested construction makes the expected result the
  // smallest operand — verified before timing.
  for (const KwayScenario& scenario : kway_scenarios) {
    std::vector<std::vector<Extent>> enc;
    size_t kway_logical = 0;
    for (const auto& chain : scenario.chains) {
      std::vector<Extent> ops;
      for (const std::vector<NodeId>& s : chain) {
        kway_logical += s.size();
        ops.push_back(EncodeAs(rep_name, std::vector<NodeId>(s)));
      }
      std::vector<const Extent*> ptrs;
      for (const Extent& e : ops) ptrs.push_back(&e);
      if (IntersectMany(ptrs).Materialize() != chain.back()) {
        std::cerr << "FATAL: " << rep_name << " IntersectMany arity "
                  << scenario.arity << " is wrong\n";
        std::exit(1);
      }
      enc.push_back(std::move(ops));
    }
    best_ms = 0;
    for (int r = 0; r < reps; ++r) {
      const double ms = TimeMs([&] {
        for (const std::vector<Extent>& ops : enc) {
          std::vector<const Extent*> ptrs;
          for (const Extent& e : ops) ptrs.push_back(&e);
          guard += IntersectMany(ptrs).size();
        }
      });
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    result.kway.emplace_back(
        scenario.arity,
        best_ms > 0 ? static_cast<double>(kway_logical) / best_ms / 1e3 : 0);
  }
  if (guard == 0 && !big.empty()) std::cerr << "";  // Keep `guard` live.
  return result;
}

/// The PR9 delta kernel: materialize both operands, intersect the vectors.
/// Run over the same pairwise workload so the `_delta_` intersect metric is
/// directly comparable.
double RunDecodeMergeBaseline(const std::vector<std::vector<NodeId>>& blocks,
                              const std::vector<size_t>& big, int reps) {
  std::vector<Extent> extents;
  extents.reserve(blocks.size());
  for (const std::vector<NodeId>& block : blocks) {
    extents.push_back(EncodeAs("delta", std::vector<NodeId>(block)));
  }
  size_t logical = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    logical += 2 * extents[big[i]].size();
    logical += extents[big[i]].size() +
               extents[big[(i + 1) % big.size()]].size();
  }
  size_t guard = 0;
  double best_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double ms = TimeMs([&] {
      for (size_t i = 0; i < big.size(); ++i) {
        const Extent& a = extents[big[i]];
        const Extent& b = extents[big[(i + 1) % big.size()]];
        guard += Intersect(a.Materialize(), a.Materialize()).size();
        guard += Intersect(a.Materialize(), b.Materialize()).size();
      }
    });
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  if (guard == 0 && !big.empty()) std::cerr << "";
  return best_ms > 0 ? static_cast<double>(logical) / best_ms / 1e3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  int k_max = 4;
  int reps = 3;
  std::string out_path = "BENCH_extent.json";
  std::vector<size_t> tier_nodes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kmax") {
      k_max = std::atoi(next().c_str());
    } else if (arg == "--reps") {
      reps = std::atoi(next().c_str());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--tiers") {
      std::string list = next();
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        tier_nodes.push_back(static_cast<size_t>(
            std::atoll(list.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else {
      std::cerr << "usage: bench_extent [--tiers n1,n2,...] [--kmax K]"
                   " [--reps R] [--out file]\n";
      return 2;
    }
  }
  if (tier_nodes.empty()) tier_nodes = {100000, 500000, 2000000};

  const SimdLevel active = ActiveSimdLevel();
  const SimdLevel detected = DetectedSimdLevel();
  std::cout << "SIMD: active=" << SimdLevelName(active)
            << " detected=" << SimdLevelName(detected) << "\n";

  TableWriter table({"tier", "nodes", "extents", "rep", "bytes", "MiB",
                     "vs_vector", "encode_ms", "intersect_melems_s",
                     "diff_melems_s", "kway4_melems_s"});
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("simd_active_level",
                       static_cast<double>(static_cast<int>(active)));
  metrics.emplace_back("simd_detected_level",
                       static_cast<double>(static_cast<int>(detected)));

  for (size_t nodes : tier_nodes) {
    const std::string tier = harness::ScaleTierName(nodes);
    Result<DataGraph> graph =
        harness::BuildXMarkGraphStreamed(harness::XMarkScaleForNodes(nodes));
    if (!graph.ok()) {
      std::cerr << "FATAL: " << tier
                << " generation failed: " << graph.status().message() << "\n";
      return 1;
    }
    const std::vector<std::vector<NodeId>> blocks =
        HierarchyExtents(*graph, k_max);

    // The 32 largest extents drive the pairwise and k-way workloads.
    std::vector<size_t> by_size(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
      return blocks[a].size() > blocks[b].size();
    });
    by_size.resize(std::min<size_t>(32, by_size.size()));
    const std::vector<KwayScenario> kway_scenarios =
        BuildKwayScenarios(blocks, by_size);

    double vector_bytes = 0, vector_melems = 0;
    for (const char* rep : {"vector", "delta", "hybrid", "auto"}) {
      const RepResult r = RunRep(rep, blocks, by_size, kway_scenarios, reps);
      if (r.rep == "vector") {
        vector_bytes = static_cast<double>(r.bytes);
        vector_melems = r.intersect_melems_s;
      }
      const double ratio =
          vector_bytes > 0 ? static_cast<double>(r.bytes) / vector_bytes : 0;
      double kway4 = 0;
      for (const auto& [arity, melems] : r.kway) {
        if (arity == 4) kway4 = melems;
      }
      table.AddRowValues(tier, graph->num_nodes(), blocks.size(), r.rep,
                         r.bytes, static_cast<double>(r.bytes) / (1 << 20),
                         ratio, r.encode_ms, r.intersect_melems_s,
                         r.difference_melems_s, kway4);
      const std::string prefix = tier + "_" + r.rep + "_";
      metrics.emplace_back(prefix + "bytes", static_cast<double>(r.bytes));
      metrics.emplace_back(prefix + "bytes_vs_vector", ratio);
      metrics.emplace_back(prefix + "encode_ms", r.encode_ms);
      metrics.emplace_back(prefix + "intersect_melems_s",
                           r.intersect_melems_s);
      metrics.emplace_back(prefix + "difference_melems_s",
                           r.difference_melems_s);
      for (const auto& [arity, melems] : r.kway) {
        metrics.emplace_back(
            prefix + "kway" + std::to_string(arity) + "_melems_s", melems);
      }
      if (vector_melems > 0) {
        metrics.emplace_back(prefix + "intersect_vs_vector",
                             r.intersect_melems_s / vector_melems);
      }
    }

    // PR9 baselines, reproduced in-run so the speedup gates never compare
    // against stale numbers from another machine.
    const double decode_merge =
        RunDecodeMergeBaseline(blocks, by_size, reps);
    metrics.emplace_back(tier + "_delta_decode_merge_melems_s", decode_merge);
    double delta_native = 0;
    for (auto it = metrics.rbegin(); it != metrics.rend(); ++it) {
      if (it->first == tier + "_delta_intersect_melems_s") {
        delta_native = it->second;
        break;
      }
    }
    if (decode_merge > 0) {
      metrics.emplace_back(tier + "_delta_native_speedup",
                           delta_native / decode_merge);
    }

    SetSimdLevel(SimdLevel::kScalar);
    const RepResult hybrid_scalar =
        RunRep("hybrid", blocks, by_size, {}, reps);
    SetSimdLevel(active);  // Restore the startup level (honors MRX_SIMD).
    metrics.emplace_back(tier + "_hybrid_scalar_melems_s",
                         hybrid_scalar.intersect_melems_s);
    double hybrid_simd = 0;
    for (auto it = metrics.rbegin(); it != metrics.rend(); ++it) {
      if (it->first == tier + "_hybrid_intersect_melems_s") {
        hybrid_simd = it->second;
        break;
      }
    }
    if (hybrid_scalar.intersect_melems_s > 0) {
      metrics.emplace_back(
          tier + "_hybrid_simd_speedup",
          hybrid_simd / hybrid_scalar.intersect_melems_s);
    }

    metrics.emplace_back(tier + "_nodes",
                         static_cast<double>(graph->num_nodes()));
    metrics.emplace_back(tier + "_extents",
                         static_cast<double>(blocks.size()));
  }

  std::cout << "== Extent representations over A(0.." << k_max
            << ") hierarchy extents (XMark streamed; every encoding"
               " verified lossless before timing) ==\n";
  table.RenderText(std::cout);

  std::ofstream bench(out_path, std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "extent", metrics);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
