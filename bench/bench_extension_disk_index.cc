// Extension bench (the paper's §6 future work): the disk-resident M*(k)
// index with selective component loading. Refines an index for the
// length-9 XMark workload, persists it, and replays the workload through
// DiskMStarIndex, reporting how many components (and bytes) each query
// length actually pulls from disk — the payoff of the per-component
// container layout.

#include <filesystem>
#include <map>

#include "bench/bench_common.h"
#include "index/m_star_index.h"
#include "storage/disk_m_star_index.h"
#include "storage/graph_io.h"
#include "storage/index_io.h"
#include "util/table_writer.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  auto workload = bench::MakeWorkload(g, 9);

  MStarIndex index(g);
  for (const PathExpression& q : workload) index.Refine(q);

  std::string dir = std::filesystem::temp_directory_path().string();
  std::string graph_path = dir + "/mrx_bench_graph.mrxg";
  std::string index_path = dir + "/mrx_bench_index.mrxs";
  Status s = storage::SaveDataGraphToFile(g, graph_path);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  s = storage::SaveMStarIndexToFile(index, index_path);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "serialized: graph "
            << std::filesystem::file_size(graph_path) / 1024 << " KiB, "
            << "index " << std::filesystem::file_size(index_path) / 1024
            << " KiB (" << index.num_components() << " components)\n\n";

  // Replay the workload in ascending length order, reporting the loading
  // footprint after each length bucket.
  auto disk = storage::DiskMStarIndex::Open(g, index_path);
  if (!disk.ok()) {
    std::cerr << disk.status() << "\n";
    return 1;
  }
  std::map<size_t, std::vector<const PathExpression*>> by_length;
  for (const PathExpression& q : workload) {
    by_length[q.length()].push_back(&q);
  }
  TableWriter table({"query_length", "queries", "avg_cost",
                     "components_loaded", "KiB_read"});
  for (const auto& [len, queries] : by_length) {
    uint64_t cost = 0;
    for (const PathExpression* q : queries) {
      auto r = disk->QueryTopDown(*q);
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      cost += r->stats.total();
    }
    table.AddRowValues(len, queries.size(),
                       static_cast<double>(cost) / queries.size(),
                       disk->components_loaded(),
                       disk->bytes_read() / 1024);
  }
  std::cout << "== Extension: disk-resident M*(k), selective component "
               "loading (XMark, len 9) ==\n";
  table.RenderText(std::cout);
  std::cout << "\nShort queries only materialize the coarse prefix of the "
               "container;\nthe finest components load when the first long "
               "query arrives.\n";

  std::filesystem::remove(graph_path);
  std::filesystem::remove(index_path);
  return 0;
}
