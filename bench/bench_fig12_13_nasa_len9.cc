// Reproduces Figures 12 and 13: average query cost vs index size (nodes and
// edges) on the NASA dataset with maximum query length 9.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("nasa");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 9));

  std::vector<harness::IndexRunResult> runs;
  for (int k = 0; k <= 7; ++k) runs.push_back(driver.RunAk(k));
  runs.push_back(driver.RunDkConstruct());
  runs.push_back(driver.RunDkPromote());
  runs.push_back(driver.RunMk());
  runs.push_back(driver.RunMStar());

  harness::PrintCostVsSize(
      std::cout,
      "Figures 12+13: query cost vs index nodes/edges, NASA, max length 9",
      runs);
  return 0;
}
