// Ablation: what does workload *adaptivity* buy over a static
// multiresolution hierarchy? The static baseline stacks the full A(0..k)
// family as M*(k) components (precise for every query of length ≤ k, no
// FUPs needed); the adaptive index refines only what the workload touches.
// This isolates the paper's central bet: most of a static index's
// resolution is wasted on paths nobody queries.

#include "bench/bench_common.h"
#include "index/m_star_index.h"
#include "util/table_writer.h"

namespace {

void RunDataset(const std::string& name) {
  using namespace mrx;
  DataGraph g = bench::LoadDataset(name);
  auto workload = bench::MakeWorkload(g, 9);

  MStarIndex adaptive(g);
  for (const PathExpression& q : workload) adaptive.Refine(q);

  MStarIndex static_full = MStarIndex::BuildStaticHierarchy(g, 9);
  MStarIndex static_half = MStarIndex::BuildStaticHierarchy(g, 4);

  auto measure = [&](MStarIndex& index) {
    uint64_t cost = 0;
    for (const PathExpression& q : workload) {
      cost += index.QueryTopDown(q).stats.total();
    }
    return static_cast<double>(cost) / workload.size();
  };

  TableWriter table({"variant", "physical_nodes", "physical_edges",
                     "avg_cost"});
  table.AddRowValues("adaptive M*(k), 500 FUPs",
                     adaptive.PhysicalNodeCount(),
                     adaptive.PhysicalEdgeCount(), measure(adaptive));
  table.AddRowValues("static A(0..9) hierarchy",
                     static_full.PhysicalNodeCount(),
                     static_full.PhysicalEdgeCount(), measure(static_full));
  table.AddRowValues("static A(0..4) hierarchy",
                     static_half.PhysicalNodeCount(),
                     static_half.PhysicalEdgeCount(), measure(static_half));
  std::cout << "== Ablation: adaptive vs static multiresolution, " << name
            << " (len 9) ==\n";
  table.RenderText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  RunDataset("xmark");
  RunDataset("nasa");
  return 0;
}
