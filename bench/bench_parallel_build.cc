// Parallel index construction: wall-clock for the full static-hierarchy
// build (and the underlying fixpoint bisimulation) at 1/2/4/8 pool
// threads, on an XMark-like document graph and a DTD-random reference-rich
// graph. Every pooled run's partition is checked byte-identical to the
// serial run before its timing is reported — the speedup numbers are only
// meaningful under the determinism contract (docs/PERFORMANCE.md).
//
// Emits BENCH_parallel_build.json (harness::WriteBenchJson) so CI can diff
// the scaling trajectory across PRs. Honors MRX_SCALE.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "index/bisimulation.h"
#include "index/m_star_index.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace {

using namespace mrx;

DataGraph BuildDtdRandomGraph(size_t target_elements) {
  // Catalog/section DTD shared with bench_scale_build (harness::
  // BenchCatalogDtd): ID/IDREF attributes give the multi-parent, cyclic
  // shape that stresses signature grouping.
  auto graph = harness::BuildDtdRandomGraph(target_elements);
  if (!graph.ok()) {
    std::cerr << "dtd_random build failed: " << graph.status().message()
              << "\n";
    std::exit(1);
  }
  return *std::move(graph);
}

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Best-of-`reps` wall clock, in milliseconds.
double BestOf(int reps, const std::function<void()>& fn) {
  double best = TimeMs(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, TimeMs(fn));
  return best;
}

struct DatasetResult {
  std::string name;
  size_t nodes = 0;
  double serial_ms = 0;
  std::vector<std::pair<size_t, double>> pooled_ms;  // (threads, ms)
};

DatasetResult RunDataset(const std::string& name, const DataGraph& g,
                         int k_max, int reps) {
  DatasetResult result;
  result.name = name;
  result.nodes = g.num_nodes();

  const BisimulationPartition serial_part = ComputeKBisimulation(g, k_max);
  result.serial_ms = BestOf(reps, [&] {
    MStarIndex index = MStarIndex::BuildStaticHierarchy(g, k_max);
    if (index.num_components() == 0) std::exit(1);
  });

  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    // Determinism gate: the pooled partition must be byte-identical to
    // the serial one, or the timing below is comparing different work.
    const BisimulationPartition pooled =
        ComputeKBisimulation(g, k_max, RefineOptions{&pool});
    if (pooled.block_of != serial_part.block_of ||
        pooled.num_blocks != serial_part.num_blocks) {
      std::cerr << "FATAL: " << name << " partition diverges at "
                << threads << " threads\n";
      std::exit(1);
    }
    const double ms = BestOf(reps, [&] {
      MStarIndex index =
          MStarIndex::BuildStaticHierarchy(g, k_max, RefineOptions{&pool});
      if (index.num_components() == 0) std::exit(1);
    });
    result.pooled_ms.emplace_back(threads, ms);
  }
  return result;
}

}  // namespace

int main() {
  const double scale = harness::BenchScaleFromEnv(0.5);
  const int k_max = 8;
  const int reps = 3;

  auto xmark = harness::BuildXMarkGraph(scale);
  if (!xmark.ok()) {
    std::cerr << "xmark build failed: " << xmark.status().message() << "\n";
    return 1;
  }
  DataGraph dtd_graph =
      BuildDtdRandomGraph(static_cast<size_t>(60000 * scale));

  std::vector<DatasetResult> results;
  results.push_back(RunDataset("xmark", *xmark, k_max, reps));
  results.push_back(RunDataset("dtd_random", dtd_graph, k_max, reps));

  TableWriter table({"dataset", "nodes", "serial_ms", "t2_ms", "t4_ms",
                     "t8_ms", "t4_speedup"});
  std::vector<std::pair<std::string, double>> metrics;
  for (const DatasetResult& r : results) {
    double t2 = 0, t4 = 0, t8 = 0;
    for (auto [threads, ms] : r.pooled_ms) {
      if (threads == 2) t2 = ms;
      if (threads == 4) t4 = ms;
      if (threads == 8) t8 = ms;
    }
    const double speedup4 = t4 > 0 ? r.serial_ms / t4 : 0;
    table.AddRowValues(r.name, r.nodes, r.serial_ms, t2, t4, t8, speedup4);
    metrics.emplace_back(r.name + "_serial_ms", r.serial_ms);
    metrics.emplace_back(r.name + "_t2_ms", t2);
    metrics.emplace_back(r.name + "_t4_ms", t4);
    metrics.emplace_back(r.name + "_t8_ms", t8);
    metrics.emplace_back(r.name + "_t4_speedup", speedup4);
  }

  std::cout << "== Parallel static-hierarchy build (k_max=" << k_max
            << ", scale=" << scale
            << "; pooled partitions verified identical to serial) ==\n";
  table.RenderText(std::cout);

  std::ofstream bench("BENCH_parallel_build.json", std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "parallel_build", metrics);
  std::cout << "wrote BENCH_parallel_build.json\n";
  return 0;
}
