// Live-update maintenance cost: incremental Apply vs a full from-scratch
// rebuild of the same A(0..k) chain, across mutation batch sizes given as
// fractions of the graph (0.1%, 1%, 5%), on an XMark document graph and a
// DTD-random reference-rich graph. The claim under test (docs/UPDATES.md):
// for batches up to ~1% of the graph, local re-refinement with bounded
// cascade beats rebuilding by a wide margin; past the rebuild threshold the
// maintainer itself falls back, so the curve converges to ~1x by design.
//
// Emits BENCH_mutation.json (harness::WriteBenchJson) so CI can diff the
// trajectory across PRs. Honors MRX_SCALE.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "mutate/incremental_maintainer.h"
#include "mutate/random_batch.h"
#include "util/rng.h"
#include "util/table_writer.h"
#include "xml/graph_builder.h"

namespace {

using namespace mrx;

constexpr const char* kBenchDtd = R"(
<!ELEMENT catalog (section+)>
<!ELEMENT section (section*, item*, note?)>
<!ELEMENT item (name, ref*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST item id ID #REQUIRED>
<!ATTLIST ref target IDREF #REQUIRED>
)";

DataGraph BuildDtdRandomGraph(size_t target_elements) {
  auto dtd = datagen::Dtd::Parse(kBenchDtd);
  if (!dtd.ok()) {
    std::cerr << "DTD parse failed: " << dtd.status().message() << "\n";
    std::exit(1);
  }
  datagen::DtdGeneratorOptions options;
  options.seed = 20260808;
  options.min_elements = target_elements;
  options.max_elements = target_elements * 2;
  options.star_mean = 2.0;
  options.max_depth = 14;
  auto doc = datagen::GenerateDocument(*dtd, options);
  if (!doc.ok()) {
    std::cerr << "DTD generation failed: " << doc.status().message() << "\n";
    std::exit(1);
  }
  auto graph = xml::BuildGraphFromXml(*doc);
  if (!graph.ok()) {
    std::cerr << "graph build failed: " << graph.status().message() << "\n";
    std::exit(1);
  }
  return *std::move(graph);
}

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct FractionResult {
  double fraction = 0;
  size_t ops = 0;
  double apply_ms = 0;    ///< Min incremental Apply over `reps` batches.
  double rebuild_ms = 0;  ///< Min fresh-chain build on the same versions.
  double speedup = 0;
  size_t cascade = 0;     ///< Mean dirty-set size across the batches.
  size_t full_rounds = 0; ///< Levels that hit the rebuild fallback (total).
};

FractionResult RunFraction(const DataGraph& g, double fraction, int k_max,
                           int reps) {
  FractionResult result;
  result.fraction = fraction;
  result.ops = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(g.num_nodes())));

  mutate::MaintainerOptions mo;
  mo.k_max = k_max;
  mutate::IncrementalMaintainer m(g, mo);
  Rng rng(static_cast<uint64_t>(1000 + result.ops));
  mutate::RandomBatchOptions gen;
  gen.num_ops = result.ops;
  if (result.ops > 200) {
    // Ops are drawn independently, so the chance that a huge batch is
    // self-consistent (no op touching a subtree another op deleted, no
    // duplicate ref edits) vanishes; keep huge batches append-only.
    gen.delete_weight = 0;
    gen.add_ref_weight = 0;
    gen.remove_ref_weight = 0;
  }

  int applied = 0;
  size_t cascade = 0;
  // One untimed warmup round first: the first Apply and the first fresh
  // build pay one-off page faults and allocator growth that belong to
  // process startup, not to either steady-state cost being compared.
  for (int rep = -1; rep < reps; ++rep) {
    // Batches can reject (ops interact); draw until one applies. Timing
    // covers Apply only — generation and the baseline run outside.
    for (int attempt = 0; attempt < 10; ++attempt) {
      const mutate::MutationBatch batch =
          mutate::GenerateRandomBatch(rng, m.graph(), gen);
      Result<mutate::BatchReceipt> receipt = Status::Internal("unset");
      const double ms = TimeMs([&] { receipt = m.Apply(batch); });
      if (!receipt.ok()) continue;
      if (rep >= 0) {
        ++applied;
        result.apply_ms = applied == 1 ? ms : std::min(result.apply_ms, ms);
        cascade += receipt->dirty_nodes;
        result.full_rounds += receipt->full_rounds;
      }
      break;
    }
    // The from-scratch baseline: constructing a fresh maintainer builds
    // the whole A(0..k) chain on the current version — exactly the state
    // Apply just maintained incrementally.
    const double rebuild = TimeMs([&] {
      mutate::IncrementalMaintainer fresh(m.graph(), mo);
      if (fresh.AkPartition(k_max).num_blocks == 0) std::exit(1);
    });
    if (rep >= 0) {
      result.rebuild_ms =
          rep == 0 ? rebuild : std::min(result.rebuild_ms, rebuild);
    }
  }
  if (applied == 0) {
    std::cerr << "FATAL: no batch of " << result.ops << " ops applied\n";
    std::exit(1);
  }
  result.cascade = cascade / static_cast<size_t>(applied);
  result.speedup =
      result.apply_ms > 0 ? result.rebuild_ms / result.apply_ms : 0;
  return result;
}

}  // namespace

int main() {
  const double scale = harness::BenchScaleFromEnv(0.5);
  // Same chain depth as bench_parallel_build: the A(0..8) hierarchy is the
  // repo's canonical full-resolution build, and chain depth is exactly what
  // incremental maintenance amortizes (each extra level costs a full
  // refinement round in the rebuild but only a cascade-local round here).
  const int k_max = 8;
  const int reps = 7;
  const std::vector<double> fractions = {0.001, 0.01, 0.05};

  auto xmark = harness::BuildXMarkGraph(scale);
  if (!xmark.ok()) {
    std::cerr << "xmark build failed: " << xmark.status().message() << "\n";
    return 1;
  }
  DataGraph dtd_graph =
      BuildDtdRandomGraph(static_cast<size_t>(40000 * scale));

  TableWriter table({"dataset", "nodes", "fraction", "batch_ops",
                     "apply_ms", "rebuild_ms", "speedup", "cascade"});
  std::vector<std::pair<std::string, double>> metrics;
  bool ok = true;
  for (const auto& [name, g] :
       std::vector<std::pair<std::string, const DataGraph*>>{
           {"xmark", &*xmark}, {"dtd_random", &dtd_graph}}) {
    for (double fraction : fractions) {
      const FractionResult r = RunFraction(*g, fraction, k_max, reps);
      table.AddRowValues(name, g->num_nodes(), r.fraction, r.ops,
                         r.apply_ms, r.rebuild_ms, r.speedup, r.cascade);
      const std::string key =
          name + "_f" + std::to_string(r.fraction).substr(0, 5);
      metrics.emplace_back(key + "_apply_ms", r.apply_ms);
      metrics.emplace_back(key + "_rebuild_ms", r.rebuild_ms);
      metrics.emplace_back(key + "_speedup", r.speedup);
      // The acceptance line: batches at or under 1% of the graph must be
      // at least 5x cheaper to maintain than to rebuild.
      if (fraction <= 0.01 && r.speedup < 5.0) {
        std::cerr << "FAIL: " << name << " fraction " << fraction
                  << " speedup " << r.speedup << " < 5\n";
        ok = false;
      }
    }
  }

  std::cout << "== Incremental maintenance vs full rebuild (k_max=" << k_max
            << ", scale=" << scale << ") ==\n";
  table.RenderText(std::cout);

  std::ofstream bench("BENCH_mutation.json", std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "mutation", metrics);
  std::cout << "wrote BENCH_mutation.json\n";
  return ok ? 0 : 1;
}
