// Reproduces Figures 16 and 17: index node/edge growth over queries,
// NASA, max query length 9.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("nasa");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 9));

  std::vector<harness::IndexRunResult> runs;
  runs.push_back(driver.RunDkPromote(50));
  runs.push_back(driver.RunMk(50));
  runs.push_back(driver.RunMStar(50));

  harness::PrintGrowth(
      std::cout,
      "Figures 16+17: index size growth over queries, NASA, max length 9",
      runs);
  return 0;
}
