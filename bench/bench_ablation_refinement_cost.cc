// Ablation: *refinement* cost (reorganization effort), the axis the paper
// leaves unmeasured. Replays the length-9 workload through the three
// incrementally refined indexes and reports how many node splits, new
// index nodes, and extent moves each performed — the price paid for the
// final query performance of Figures 10-13.

#include "bench/bench_common.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "util/table_writer.h"

namespace {

void RunDataset(const std::string& name) {
  using namespace mrx;
  DataGraph g = bench::LoadDataset(name);
  auto workload = bench::MakeWorkload(g, 9);

  DkIndex dkp(g);
  MkIndex mk(g);
  MStarIndex mstar(g);
  for (const PathExpression& q : workload) {
    dkp.Promote(q);
    mk.Refine(q);
    mstar.Refine(q);
  }

  TableWriter table({"index", "splits", "nodes_created", "extent_moves",
                     "final_nodes"});
  const RefinementStats& d = dkp.graph().refinement_stats();
  table.AddRowValues("D(k)-promote", d.splits, d.nodes_created,
                     d.extent_moves, dkp.graph().num_nodes());
  const RefinementStats& m = mk.graph().refinement_stats();
  table.AddRowValues("M(k)", m.splits, m.nodes_created, m.extent_moves,
                     mk.graph().num_nodes());
  RefinementStats s = mstar.TotalRefinementStats();
  table.AddRowValues("M*(k) (all components)", s.splits, s.nodes_created,
                     s.extent_moves, mstar.PhysicalNodeCount());
  std::cout << "== Ablation: refinement effort over the 500-query workload, "
            << name << " (len 9) ==\n";
  table.RenderText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  RunDataset("xmark");
  RunDataset("nasa");
  return 0;
}
