// Reproduces Figures 18, 19 and 20: average query cost vs index size on
// XMark with maximum query length 4 (A(k) shown for k ≤ 4). Figure 18 is
// the full set; Figures 19/20 are the same data without A(0), A(1),
// D(k)-promote and M(k) (the paper re-plots to zoom), so a second table
// prints that subset.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 4));

  std::vector<harness::IndexRunResult> runs;
  for (int k = 0; k <= 4; ++k) runs.push_back(driver.RunAk(k));
  runs.push_back(driver.RunDkConstruct());
  runs.push_back(driver.RunDkPromote());
  runs.push_back(driver.RunMk());
  runs.push_back(driver.RunMStar());

  harness::PrintCostVsSize(
      std::cout,
      "Figure 18 (+ edges): query cost vs index size, XMark, max length 4",
      runs);

  std::vector<harness::IndexRunResult> zoomed;
  for (const auto& run : runs) {
    if (run.index_name == "A(0)" || run.index_name == "A(1)" ||
        run.index_name == "D(k)-promote" || run.index_name == "M(k)") {
      continue;
    }
    zoomed.push_back(run);
  }
  harness::PrintCostVsSize(
      std::cout,
      "Figures 19+20: same data without A(0), A(1), D(k)-promote, M(k)",
      zoomed);
  return 0;
}
