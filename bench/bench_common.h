#ifndef MRX_BENCH_BENCH_COMMON_H_
#define MRX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "harness/datasets.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "query/path_expression.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx::bench {

/// Builds the paper's workload for a dataset: 500 queries drawn from all
/// label paths of length ≤ 9, query length capped at `max_query_length`.
inline std::vector<PathExpression> MakeWorkload(const DataGraph& g,
                                                size_t max_query_length,
                                                uint64_t seed = 1,
                                                size_t num_queries = 500) {
  LabelPathEnumerationOptions enum_options;
  enum_options.max_length = 9;
  LabelPathSet paths = EnumerateLabelPaths(g, enum_options);
  if (paths.truncated) {
    std::cerr << "note: label path enumeration truncated at "
              << paths.paths.size() << " paths\n";
  }
  WorkloadOptions options;
  options.num_queries = num_queries;
  options.max_query_length = max_query_length;
  options.seed = seed;
  return GenerateWorkload(paths, options);
}

/// Loads a dataset by name ("xmark" or "nasa") at the bench scale
/// (MRX_SCALE env var, default 1.0 = the paper's ~120k/~90k nodes),
/// printing its summary. Exits on failure.
inline DataGraph LoadDataset(const std::string& name) {
  double scale = harness::BenchScaleFromEnv(1.0);
  Result<DataGraph> g =
      name == "xmark" ? harness::BuildXMarkGraph(scale)
                      : harness::BuildNasaGraph(scale);
  if (!g.ok()) {
    std::cerr << "failed to build dataset " << name << ": " << g.status()
              << "\n";
    std::exit(1);
  }
  harness::PrintDatasetSummary(std::cout, name + " (scale " +
                                              std::to_string(scale) + ")",
                               *g);
  return std::move(g).value();
}

}  // namespace mrx::bench

#endif  // MRX_BENCH_BENCH_COMMON_H_
