// Extension bench: twig (branching path) queries on XMark. The structural
// index answers the trunk; branch predicates validate against the data
// graph. Compares an unrefined index (A(0) trunk evaluation + validation)
// against one refined for the trunks — trunk refinement removes the
// trunk's validation cost and shrinks the candidate set the predicates
// must check.

#include "bench/bench_common.h"
#include "index/twig_eval.h"
#include "query/twig.h"
#include "util/table_writer.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  DataEvaluator evaluator(g);

  const char* twig_texts[] = {
      "//open_auction[bidder]/seller/person",
      "//open_auction[reserve][bidder/personref]/itemref/item",
      "//person[address/city]/watches/watch/open_auction",
      "//item[incategory][mailbox//text]/name",
      "//closed_auction[annotation//emph]/buyer/person",
      "//category[//keyword]/name",
  };

  std::vector<TwigQuery> twigs;
  for (const char* text : twig_texts) {
    auto t = TwigQuery::Parse(text, g.symbols());
    if (t.ok()) twigs.push_back(std::move(t).value());
  }

  MStarIndex cold(g);
  MStarIndex refined(g);
  for (const TwigQuery& t : twigs) refined.Refine(t.TrunkExpression());

  TableWriter table({"twig", "answers", "cold_cost", "refined_cost"});
  for (const TwigQuery& t : twigs) {
    QueryResult cold_result = EvaluateTwigWithIndex(cold, t, evaluator);
    QueryResult warm_result = EvaluateTwigWithIndex(refined, t, evaluator);
    // Sanity: both agree with the ground truth.
    if (cold_result.answer != EvaluateTwig(g, t) ||
        warm_result.answer != cold_result.answer) {
      std::cerr << "MISMATCH for " << t.ToString(g.symbols()) << "\n";
      return 1;
    }
    table.AddRowValues(t.ToString(g.symbols()), cold_result.answer.size(),
                       cold_result.stats.total(),
                       warm_result.stats.total());
  }
  std::cout << "== Extension: twig queries, trunk-refined vs cold M*(k) "
               "(XMark) ==\n";
  table.RenderText(std::cout);
  std::cout << "\nRefining the trunks removes the trunk validation cost; "
               "branch predicates\nstill validate per candidate (structural "
               "indexes summarize incoming paths\nonly — §2 points to "
               "covering/UD(k,l) indexes for branching precision).\n";
  return 0;
}
