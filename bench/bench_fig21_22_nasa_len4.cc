// Reproduces Figures 21 and 22: average query cost vs index size on NASA
// with maximum query length 4 (A(k) shown for k ≤ 4).

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("nasa");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 4));

  std::vector<harness::IndexRunResult> runs;
  for (int k = 0; k <= 4; ++k) runs.push_back(driver.RunAk(k));
  runs.push_back(driver.RunDkConstruct());
  runs.push_back(driver.RunDkPromote());
  runs.push_back(driver.RunMk());
  runs.push_back(driver.RunMStar());

  harness::PrintCostVsSize(
      std::cout,
      "Figures 21+22: query cost vs index nodes/edges, NASA, max length 4",
      runs);
  return 0;
}
