// Closed-loop load driver for the concurrent query-serving subsystem
// (src/server/): replays the paper's synthetic workload stream against a
// QueryServer from N client threads and reports aggregate throughput and
// latency percentiles vs. worker count. The serving regime is the one the
// paper's Figure 5 loop converges to: the index is primed by one replay of
// the stream (FUPs promoted, refinements published), then the timed phase
// measures steady-state concurrent serving with the sharded answer cache
// and shared-mutex read path.
//
// The final CSV block (via TableWriter::RenderCsv) and the BENCH_server.json
// trajectory record (via harness::WriteBenchJson) are the machine-readable
// records the harness tracks across PRs.

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "harness/report.h"
#include "server/load_driver.h"
#include "util/table_writer.h"

namespace {

void RunDataset(const std::string& name,
                std::vector<std::pair<std::string, double>>* trajectory) {
  using namespace mrx;
  DataGraph g = bench::LoadDataset(name);
  std::vector<PathExpression> workload = bench::MakeWorkload(g, 9);

  TableWriter table(server::ServerStatsHeaders());
  double baseline_qps = 0;
  std::vector<double> speedups;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    server::LoadDriverOptions options;
    options.num_workers = workers;
    options.num_clients = workers;  // Closed loop: one stream per worker.
    options.total_queries = 20000;
    server::LoadReport report = server::RunLoadDriver(g, workload, options);
    if (workers == 1) baseline_qps = report.Qps();
    speedups.push_back(baseline_qps > 0 ? report.Qps() / baseline_qps : 0);
    server::AppendServerStatsRow(report.stats,
                                 name + "/" + std::to_string(workers) + "w",
                                 report.Qps(), &table);
    const std::string prefix = name + "_" + std::to_string(workers) + "w_";
    trajectory->emplace_back(prefix + "qps", report.Qps());
    trajectory->emplace_back(prefix + "p99_us", report.stats.LatencyUs(99));
    trajectory->emplace_back(prefix + "utilization",
                             report.stats.AvgWorkerUtilization());
  }

  std::cout << "== Server throughput vs worker threads, " << name << " ==\n";
  table.RenderText(std::cout);
  std::cout << "speedup vs 1 worker:";
  const size_t worker_counts[] = {1, 2, 4, 8};
  for (size_t i = 0; i < speedups.size(); ++i) {
    std::cout << "  " << worker_counts[i] << "w="
              << TableWriter::Format(speedups[i]) << "x";
  }
  std::cout << "\n\ncsv:\n";
  table.RenderCsv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::vector<std::pair<std::string, double>> trajectory;
  RunDataset("xmark", &trajectory);

  std::ofstream bench("BENCH_server.json", std::ios::trunc);
  mrx::harness::WriteBenchJson(bench, "server_throughput", trajectory);
  std::cout << "wrote BENCH_server.json\n";
  return 0;
}
