// Reproduces Figures 10 and 11: average query cost vs index size (nodes and
// edges) on the XMark dataset with maximum query length 9, for the A(k)
// family (k = 0..7), D(k)-construct, D(k)-promote, M(k) and M*(k).

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph g = bench::LoadDataset("xmark");
  harness::ExperimentDriver driver(g, bench::MakeWorkload(g, 9));

  std::vector<harness::IndexRunResult> runs;
  for (int k = 0; k <= 7; ++k) runs.push_back(driver.RunAk(k));
  runs.push_back(driver.RunDkConstruct());
  runs.push_back(driver.RunDkPromote());
  runs.push_back(driver.RunMk());
  runs.push_back(driver.RunMStar());

  harness::PrintCostVsSize(
      std::cout,
      "Figures 10+11: query cost vs index nodes/edges, XMark, max length 9",
      runs);
  return 0;
}
