// Extension bench: the UD(k,l)-index (related work [18]) against the A(k)
// family on both datasets — size cost of adding downward bisimilarity, and
// what it buys: l-down-uniform extents (the prerequisite §4.1 names for
// efficient bottom-up evaluation).

#include "bench/bench_common.h"
#include "index/a_k_index.h"
#include "index/ud_kl_index.h"
#include "util/table_writer.h"

namespace {

void RunDataset(const std::string& name) {
  using namespace mrx;
  DataGraph g = bench::LoadDataset(name);
  auto workload = bench::MakeWorkload(g, 4);

  TableWriter table({"index", "nodes", "edges", "avg_cost"});
  auto measure = [&](const std::string& label, auto& index) {
    uint64_t cost = 0;
    for (const PathExpression& q : workload) {
      cost += index.Query(q).stats.total();
    }
    table.AddRowValues(label, index.graph().num_nodes(),
                       index.graph().num_edges(),
                       static_cast<double>(cost) / workload.size());
  };

  for (int k : {1, 2, 3}) {
    AkIndex ak(g, k);
    measure("A(" + std::to_string(k) + ")", ak);
    for (int l : {1, 2}) {
      UdklIndex ud(g, k, l);
      measure("UD(" + std::to_string(k) + "," + std::to_string(l) + ")",
              ud);
    }
  }
  std::cout << "== Extension: UD(k,l) vs A(k) on " << name << " ==\n";
  table.RenderText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  RunDataset("xmark");
  RunDataset("nasa");
  return 0;
}
