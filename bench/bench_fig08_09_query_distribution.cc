// Reproduces Figures 8 and 9: the query length distribution of the
// synthetic workload on the NASA dataset, for maximum path lengths 9 and 4.

#include "bench/bench_common.h"

int main() {
  using namespace mrx;
  DataGraph nasa = bench::LoadDataset("nasa");

  auto wl9 = bench::MakeWorkload(nasa, /*max_query_length=*/9);
  harness::PrintHistogram(
      std::cout, "Figure 8: query distribution on NASA (max path length 9)",
      QueryLengthHistogram(wl9, 9));

  auto wl4 = bench::MakeWorkload(nasa, /*max_query_length=*/4);
  harness::PrintHistogram(
      std::cout, "Figure 9: query distribution on NASA (max path length 4)",
      QueryLengthHistogram(wl4, 4));
  return 0;
}
