// Google-benchmark microbenchmarks of the core building blocks: XML
// parsing + graph loading, k-bisimulation partitioning, index
// construction, query evaluation and validation, and adaptive refinement.
// These are wall-clock complements to the paper's node-visit cost model.

#include <benchmark/benchmark.h>

#include "datagen/xmark.h"
#include "harness/datasets.h"
#include "index/a_k_index.h"
#include "index/bisimulation.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "util/thread_pool.h"
#include "workload/generator.h"
#include "workload/label_paths.h"
#include "xml/graph_builder.h"

namespace mrx {
namespace {

// A mid-size XMark graph shared by all microbenchmarks (scale 0.1 is
// ~12k element nodes — big enough to be meaningful, small enough that a
// full benchmark sweep stays in seconds).
const DataGraph& SharedGraph() {
  static const DataGraph& graph = *new DataGraph(
      std::move(harness::BuildXMarkGraph(0.1)).value());
  return graph;
}

const std::vector<PathExpression>& SharedWorkload() {
  static const auto& workload = *new std::vector<PathExpression>([] {
    LabelPathEnumerationOptions eo;
    eo.max_length = 9;
    LabelPathSet paths = EnumerateLabelPaths(SharedGraph(), eo);
    WorkloadOptions wo;
    wo.num_queries = 100;
    wo.max_query_length = 9;
    return GenerateWorkload(paths, wo);
  }());
  return workload;
}

void BM_XmlParseAndLoad(benchmark::State& state) {
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.05));
  for (auto _ : state) {
    auto g = xml::BuildGraphFromXml(doc);
    benchmark::DoNotOptimize(g);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParseAndLoad);

void BM_KBisimulation(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto part = ComputeKBisimulation(g, k);
    benchmark::DoNotOptimize(part.num_blocks);
  }
}
BENCHMARK(BM_KBisimulation)->Arg(1)->Arg(3)->Arg(5)->Arg(-1);

// Pins the sharded signature-grouping round (per-shard arena tables plus
// the deterministic merge): the Arg is the pool's thread count, so Arg(1)
// vs BM_KBisimulation/3 isolates the table rewrite and higher Args the
// scaling. Partition ids are identical across all Args by contract.
void BM_KBisimulationPooled(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto part = ComputeKBisimulation(g, 3, RefineOptions{&pool});
    benchmark::DoNotOptimize(part.num_blocks);
  }
}
BENCHMARK(BM_KBisimulationPooled)->Arg(1)->Arg(2)->Arg(4);

void BM_AkConstruction(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AkIndex index(g, k);
    benchmark::DoNotOptimize(index.graph().num_nodes());
  }
}
BENCHMARK(BM_AkConstruction)->Arg(0)->Arg(3)->Arg(6);

void BM_AkQueryWorkload(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  AkIndex index(g, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t total = 0;
    for (const PathExpression& q : SharedWorkload()) {
      total += index.Query(q).stats.total();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AkQueryWorkload)->Arg(0)->Arg(4);

void BM_DataEvaluation(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  DataEvaluator eval(g);
  for (auto _ : state) {
    size_t total = 0;
    for (const PathExpression& q : SharedWorkload()) {
      total += eval.Evaluate(q).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DataEvaluation);

void BM_MkRefineWorkload(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  for (auto _ : state) {
    MkIndex index(g);
    for (const PathExpression& q : SharedWorkload()) index.Refine(q);
    benchmark::DoNotOptimize(index.graph().num_nodes());
  }
}
BENCHMARK(BM_MkRefineWorkload);

void BM_MStarRefineWorkload(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  for (auto _ : state) {
    MStarIndex index(g);
    for (const PathExpression& q : SharedWorkload()) index.Refine(q);
    benchmark::DoNotOptimize(index.PhysicalNodeCount());
  }
}
BENCHMARK(BM_MStarRefineWorkload);

// The batch-refinement path: identical final index to per-query Refine
// (BM_MStarRefineWorkload), but target evaluation is hoisted out of the
// refinement loop and the cascade regrouping runs the sort-based kernel.
// The delta between the two benchmarks pins the grouping throughput.
void BM_MStarRefineBatchWorkload(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  for (auto _ : state) {
    MStarIndex index(g);
    index.RefineBatch(SharedWorkload());
    benchmark::DoNotOptimize(index.PhysicalNodeCount());
  }
}
BENCHMARK(BM_MStarRefineBatchWorkload);

void BM_MStarTopDownQueries(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  MStarIndex index(g);
  for (const PathExpression& q : SharedWorkload()) index.Refine(q);
  for (auto _ : state) {
    uint64_t total = 0;
    for (const PathExpression& q : SharedWorkload()) {
      total += index.QueryTopDown(q).stats.total();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MStarTopDownQueries);

void BM_LabelPathEnumeration(benchmark::State& state) {
  const DataGraph& g = SharedGraph();
  for (auto _ : state) {
    LabelPathEnumerationOptions eo;
    eo.max_length = 9;
    auto paths = EnumerateLabelPaths(g, eo);
    benchmark::DoNotOptimize(paths.paths.size());
  }
}
BENCHMARK(BM_LabelPathEnumeration);

}  // namespace
}  // namespace mrx

BENCHMARK_MAIN();
