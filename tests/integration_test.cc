// End-to-end integration tests on the generated datasets: the whole
// pipeline (generator → parser → graph → workload → every index) must
// produce exact answers, and the paper's §5 observations must hold
// qualitatively at reduced scale.

#include <gtest/gtest.h>

#include "harness/datasets.h"
#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx {
namespace {

struct Dataset {
  const char* name;
};

class IntegrationTest : public ::testing::TestWithParam<Dataset> {
 protected:
  static DataGraph Load(const std::string& name) {
    auto g = name == "xmark" ? harness::BuildXMarkGraph(0.05)
                             : harness::BuildNasaGraph(0.05);
    EXPECT_TRUE(g.ok()) << g.status();
    return std::move(g).value();
  }

  static std::vector<PathExpression> Workload(const DataGraph& g,
                                              size_t n, size_t max_len) {
    LabelPathEnumerationOptions eo;
    eo.max_length = 9;
    LabelPathSet paths = EnumerateLabelPaths(g, eo);
    WorkloadOptions wo;
    wo.num_queries = n;
    wo.max_query_length = max_len;
    wo.seed = 99;
    return GenerateWorkload(paths, wo);
  }
};

TEST_P(IntegrationTest, AllIndexesExactOnSampledWorkload) {
  DataGraph g = Load(GetParam().name);
  DataEvaluator eval(g);
  auto workload = Workload(g, 40, 6);

  std::vector<std::vector<NodeId>> expected;
  expected.reserve(workload.size());
  for (const auto& q : workload) expected.push_back(eval.Evaluate(q));

  for (int k : {0, 2, 4}) {
    AkIndex ak(g, k);
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_EQ(ak.Query(workload[i]).answer, expected[i])
          << "A(" << k << ") " << workload[i].ToString(g.symbols());
    }
  }
  {
    DkIndex dk = DkIndex::Construct(g, workload);
    ASSERT_TRUE(dk.graph().CheckConsistency().ok());
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_EQ(dk.Query(workload[i]).answer, expected[i]);
      ASSERT_TRUE(dk.Query(workload[i]).precise);
    }
  }
  {
    DkIndex dk(g);
    MkIndex mk(g);
    MStarIndex mstar(g);
    for (const auto& q : workload) {
      dk.Promote(q);
      mk.Refine(q);
      mstar.Refine(q);
    }
    ASSERT_TRUE(dk.graph().CheckConsistency().ok());
    ASSERT_TRUE(mk.graph().CheckConsistency().ok());
    ASSERT_TRUE(mstar.CheckProperties().ok()) << mstar.CheckProperties();
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_EQ(dk.Query(workload[i]).answer, expected[i]);
      ASSERT_EQ(mk.Query(workload[i]).answer, expected[i]);
      ASSERT_EQ(mstar.QueryTopDown(workload[i]).answer, expected[i]);
      ASSERT_TRUE(mk.Query(workload[i]).precise);
      ASSERT_TRUE(mstar.QueryNaive(workload[i]).precise);
    }
    // Fresh, never-refined queries are still exact on all of them.
    for (const auto& q : Workload(g, 15, 5)) {
      std::vector<NodeId> truth = eval.Evaluate(q);
      ASSERT_EQ(dk.Query(q).answer, truth);
      ASSERT_EQ(mk.Query(q).answer, truth);
      ASSERT_EQ(mstar.QueryTopDown(q).answer, truth);
    }
  }
}

TEST_P(IntegrationTest, PaperShapeHoldsAtReducedScale) {
  DataGraph g = Load(GetParam().name);
  auto workload = Workload(g, 80, 9);

  MkIndex mk(g);
  DkIndex dkp(g);
  MStarIndex mstar(g);
  for (const auto& q : workload) {
    mk.Refine(q);
    dkp.Promote(q);
    mstar.Refine(q);
  }
  auto avg = [&](auto query_fn) {
    uint64_t total = 0;
    for (const auto& q : workload) total += query_fn(q).stats.total();
    return static_cast<double>(total) / workload.size();
  };
  double mk_cost = avg([&](const auto& q) { return mk.Query(q); });
  double dkp_cost = avg([&](const auto& q) { return dkp.Query(q); });
  double mstar_cost =
      avg([&](const auto& q) { return mstar.QueryTopDown(q); });

  // The paper's headline orderings (§5.1).
  EXPECT_LE(mk.graph().num_nodes(), dkp.graph().num_nodes());
  EXPECT_LE(mk_cost, dkp_cost * 1.05);
  EXPECT_LT(mstar_cost, mk_cost);
  EXPECT_LT(mstar_cost, dkp_cost);
  // At reduced scale M*(k)'s node count is within noise of M(k)'s (the
  // decisive gap appears at full scale; see EXPERIMENTS.md).
  EXPECT_LE(mstar.PhysicalNodeCount(),
            mk.graph().num_nodes() + mk.graph().num_nodes() / 10);
}

TEST_P(IntegrationTest, AkCostFallsThenIndexGrows) {
  DataGraph g = Load(GetParam().name);
  auto workload = Workload(g, 50, 9);
  double prev_cost = 0;
  size_t prev_nodes = 0;
  bool first = true;
  for (int k : {0, 2, 4}) {
    AkIndex index(g, k);
    uint64_t total = 0;
    for (const auto& q : workload) total += index.Query(q).stats.total();
    double cost = static_cast<double>(total) / workload.size();
    if (!first) {
      EXPECT_LT(cost, prev_cost) << "k=" << k;
      EXPECT_GT(index.graph().num_nodes(), prev_nodes);
    }
    prev_cost = cost;
    prev_nodes = index.graph().num_nodes();
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         ::testing::Values(Dataset{"xmark"},
                                           Dataset{"nasa"}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace mrx
