#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.h"
#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/ud_kl_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

/// Degenerate and cyclic graphs the differential checker generates, pinned
/// here as deterministic regressions: k=0 indexes, IDREF self-loops,
/// reference-edge cycles, root-only graphs, and unknown-label queries must
/// all answer exactly like the data-graph oracle.

DataGraph RootOnlyGraph() {
  DataGraphBuilder b;
  b.AddNode("r");
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

DataGraph SelfLoopGraph() {
  // r -> a, and a holds an IDREF to itself.
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddNode("a");
  b.AddEdge(0, 1);
  b.AddEdge(1, 1, EdgeKind::kReference);
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

DataGraph RefCycleGraph() {
  // r -> a -> b -> c, with c referencing a (a 3-cycle through references)
  // and a second a/b limb outside the cycle.
  DataGraphBuilder b;
  for (const char* l : {"r", "a", "b", "c", "a", "b"}) b.AddNode(l);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 1, EdgeKind::kReference);
  b.AddEdge(0, 4);
  b.AddEdge(4, 5);
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

std::vector<const char*> ProbeExpressions() {
  return {"//a",    "/r",     "/r/a",   "//a/b",   "//b/c",  "//c/a",
          "//a/b/c", "/r/a/b", "//zzz", "/zzz",    "//*",    "/r/*",
          "//a//c",  "//c//b"};
}

void ExpectAllIndexesExact(const DataGraph& g, const char* tag) {
  DataEvaluator truth(g);
  for (const char* text : ProbeExpressions()) {
    Result<PathExpression> q = PathExpression::Parse(text, g.symbols());
    ASSERT_TRUE(q.ok()) << tag << " " << text;
    const std::vector<NodeId> expected = truth.Evaluate(*q);

    for (int k : {0, 1, 2}) {
      AkIndex ak(g, k);
      EXPECT_EQ(ak.Query(*q).answer, expected)
          << tag << " A(" << k << ") " << text;
    }
    {
      DkIndex dk(g);  // All-zero D(k): the k=0 baseline.
      EXPECT_EQ(dk.Query(*q).answer, expected) << tag << " D(k)@0 " << text;
      if (!q->HasDescendantAxis() && !q->HasWildcard() && !q->anchored()) {
        dk.Promote(*q);
        EXPECT_EQ(dk.Query(*q).answer, expected)
            << tag << " D(k)-promoted " << text;
      }
    }
    const std::vector<std::pair<int, int>> kl_settings = {
        {0, 0}, {1, 1}, {2, 1}};
    for (auto [k, l] : kl_settings) {
      UdklIndex ud(g, k, l);
      EXPECT_EQ(ud.Query(*q).answer, expected)
          << tag << " UD(" << k << "," << l << ") " << text;
    }
  }
}

TEST(IndexEdgeCasesTest, RootOnlyGraph) {
  const DataGraph g = RootOnlyGraph();
  ExpectAllIndexesExact(g, "root-only");
  // k=0 on a single node: one index node whose extent is the root.
  AkIndex ak(g, 0);
  EXPECT_TRUE(check::AuditIndexGraph(ak.graph()).empty());
}

TEST(IndexEdgeCasesTest, IdrefSelfLoop) {
  const DataGraph g = SelfLoopGraph();
  ExpectAllIndexesExact(g, "self-loop");
  // The self-loop makes a its own parent: //a/a must yield a itself.
  Result<PathExpression> q = PathExpression::Parse("//a/a", g.symbols());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(DataEvaluator(g).Evaluate(*q), (std::vector<NodeId>{1}));
  UdklIndex ud(g, 1, 1);
  EXPECT_EQ(ud.Query(*q).answer, (std::vector<NodeId>{1}));
}

TEST(IndexEdgeCasesTest, ReferenceCycle) {
  const DataGraph g = RefCycleGraph();
  ExpectAllIndexesExact(g, "ref-cycle");
  // Around the cycle: c's reference child is a, so //c/a is node 1 only
  // (node 4's parent is r, not c).
  Result<PathExpression> q = PathExpression::Parse("//c/a", g.symbols());
  ASSERT_TRUE(q.ok());
  for (int k : {0, 1, 3}) {
    AkIndex ak(g, k);
    EXPECT_EQ(ak.Query(*q).answer, (std::vector<NodeId>{1})) << "k=" << k;
  }
}

TEST(IndexEdgeCasesTest, UnknownLabelPathsAreEmptyEverywhere) {
  std::vector<DataGraph> graphs;
  graphs.push_back(RootOnlyGraph());
  graphs.push_back(SelfLoopGraph());
  graphs.push_back(RefCycleGraph());
  for (const DataGraph& g : graphs) {
    Result<PathExpression> q =
        PathExpression::Parse("//nope/nothing", g.symbols());
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(DataEvaluator(g).Evaluate(*q).empty());
    EXPECT_TRUE(AkIndex(g, 0).Query(*q).answer.empty());
    EXPECT_TRUE(DkIndex(g).Query(*q).answer.empty());
    EXPECT_TRUE(UdklIndex(g, 1, 1).Query(*q).answer.empty());
  }
}

TEST(IndexEdgeCasesTest, KZeroPartitionIsLabelPartition) {
  const DataGraph g = RefCycleGraph();
  AkIndex ak(g, 0);
  // A(0) = label partition: a block per distinct label, extents covering V.
  EXPECT_TRUE(check::AuditIndexGraph(ak.graph()).empty());
  size_t alive = 0;
  size_t extent_total = 0;
  for (IndexNodeId i = 0; i < ak.graph().num_nodes(); ++i) {
    if (!ak.graph().node(i).alive) continue;
    ++alive;
    extent_total += ak.graph().node(i).extent.size();
  }
  EXPECT_EQ(alive, g.symbols().size());
  EXPECT_EQ(extent_total, g.num_nodes());
}

}  // namespace
}  // namespace mrx
