#include <gtest/gtest.h>

#include "index/a_k_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(AkIndexTest, A0IsLabelPartition) {
  DataGraph g = MakeFigure1Graph();
  AkIndex index(g, 0);
  EXPECT_EQ(index.graph().num_nodes(), g.symbols().size());
  EXPECT_TRUE(index.graph().CheckConsistency().ok());
}

TEST(AkIndexTest, SafeForAllQueries) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  for (int k = 0; k <= 3; ++k) {
    AkIndex index(g, k);
    for (const char* text :
         {"//person", "//site/people/person", "//auction/bidder/person",
          "//site/regions/*/item", "//root/site/auctions/auction/item/item",
          "//bidder"}) {
      PathExpression p = Q(g, text);
      // AnswerOnIndex validates, so answers are exact; the deeper check is
      // that they match the data-graph ground truth.
      EXPECT_EQ(index.Query(p).answer, eval.Evaluate(p))
          << "k=" << k << " q=" << text;
    }
  }
}

TEST(AkIndexTest, PreciseUpToK) {
  DataGraph g = MakeFigure1Graph();
  AkIndex index(g, 3);
  // Length-3 query: no validation should occur.
  QueryResult r = index.Query(Q(g, "//site/people/person"));
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{7, 8, 9}));
}

TEST(AkIndexTest, LongQueriesValidate) {
  // Chain long enough that A(1) is imprecise for a length-3 query over
  // colliding structures.
  DataGraph g = MakeGraph(
      {"r", "x", "y", "a", "b", "a", "b"},
      {{0, 1}, {0, 2}, {1, 3}, {3, 4}, {2, 5}, {5, 6}});
  DataEvaluator eval(g);
  AkIndex index(g, 1);
  PathExpression p = Q(g, "//r/x/a/b");
  QueryResult r = index.Query(p);
  EXPECT_EQ(r.answer, eval.Evaluate(p));
  EXPECT_EQ(r.answer, (std::vector<NodeId>{4}));
}

TEST(AkIndexTest, SizeGrowsWithK) {
  DataGraph g = RandomGraph(3, 120, 5, 60);
  size_t prev = 0;
  for (int k = 0; k <= 4; ++k) {
    AkIndex index(g, k);
    EXPECT_GE(index.graph().num_nodes(), prev);
    prev = index.graph().num_nodes();
  }
}

TEST(AkIndexTest, ExtentsAreKBisimilar) {
  DataGraph g = RandomGraph(9, 50, 4, 25);
  for (int k = 0; k <= 3; ++k) {
    AkIndex index(g, k);
    EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()))
        << "k=" << k;
  }
}

TEST(OneIndexTest, PreciseForEveryLength) {
  DataGraph g = MakeFigure1Graph();
  OneIndex index(g);
  QueryResult r = index.Query(Q(g, "//root/site/auctions/auction/seller/person"));
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{7, 9}));
}

TEST(OneIndexTest, MatchesDataEvaluationOnRandomGraphs) {
  DataGraph g = RandomGraph(101, 70, 5, 35);
  OneIndex index(g);
  DataEvaluator eval(g);
  // Evaluate every length-2 label path that exists plus some that do not.
  const auto& symbols = g.symbols();
  for (LabelId a = 0; a < symbols.size(); ++a) {
    for (LabelId b = 0; b < symbols.size(); ++b) {
      PathExpression p({a, b}, /*anchored=*/false);
      EXPECT_EQ(index.Query(p).answer, eval.Evaluate(p));
    }
  }
}

TEST(OneIndexTest, NeverCoarserThanAk) {
  DataGraph g = RandomGraph(5, 60, 4, 30);
  OneIndex one(g);
  for (int k = 0; k <= 4; ++k) {
    AkIndex ak(g, k);
    EXPECT_GE(one.graph().num_nodes(), ak.graph().num_nodes());
  }
}

}  // namespace
}  // namespace mrx
