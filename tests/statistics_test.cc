#include <gtest/gtest.h>

#include <sstream>

#include "graph/statistics.h"
#include "harness/datasets.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;

TEST(StatisticsTest, SimpleTree) {
  //   r
  //  / \
  // a   b
  // |
  // c
  DataGraph g = MakeGraph({"r", "a", "b", "c"}, {{0, 1}, {0, 2}, {1, 3}});
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.num_reference_edges, 0u);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.unreachable_by_containment, 0u);
  EXPECT_EQ(stats.referenced_node_fraction, 0.0);
  // avg depth over reachable: (0+1+1+2)/4 = 1.
  EXPECT_DOUBLE_EQ(stats.avg_depth, 1.0);
}

TEST(StatisticsTest, ReferenceEdgesDoNotAffectDepth) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddNode("a");
  b.AddNode("b");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2, EdgeKind::kReference);  // Shortcut, must not shrink depth.
  DataGraph g = std::move(std::move(b).Build()).value();
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.num_reference_edges, 1u);
  EXPECT_NEAR(stats.referenced_node_fraction, 1.0 / 3.0, 1e-9);
}

TEST(StatisticsTest, MultiContextLabels) {
  // c appears under both a and b; d only under a.
  DataGraph g = MakeGraph({"r", "a", "b", "c", "c", "d"},
                          {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {1, 5}});
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.labels_in_multiple_contexts, 1u);
}

TEST(StatisticsTest, Figure1) {
  DataGraph g = MakeFigure1Graph();
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.num_nodes, 21u);
  EXPECT_EQ(stats.num_reference_edges, 6u);
  EXPECT_EQ(stats.max_depth, 4u);  // root/site/auctions/auction/seller
  // person and item are referenced.
  EXPECT_GT(stats.referenced_node_fraction, 0.0);
}

TEST(StatisticsTest, PrintRendersAllFields) {
  DataGraph g = MakeFigure1Graph();
  std::ostringstream os;
  PrintStatistics(os, ComputeStatistics(g));
  std::string text = os.str();
  EXPECT_NE(text.find("nodes: 21"), std::string::npos);
  EXPECT_NE(text.find("reference"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
}

TEST(StatisticsTest, DatasetsMatchPaperDescription) {
  // §5: "The NASA DTD is deeper, broader, has a more irregular structure,
  // and contains more references than the XMark DTD."
  auto xmark = harness::BuildXMarkGraph(0.05);
  auto nasa = harness::BuildNasaGraph(0.05);
  ASSERT_TRUE(xmark.ok());
  ASSERT_TRUE(nasa.ok());
  GraphStatistics xs = ComputeStatistics(*xmark);
  GraphStatistics ns = ComputeStatistics(*nasa);
  // Deeper.
  EXPECT_GT(ns.max_depth, xs.max_depth);
  // More references, relative to size.
  EXPECT_GT(
      static_cast<double>(ns.num_reference_edges) / ns.num_nodes,
      static_cast<double>(xs.num_reference_edges) / xs.num_nodes);
  // Label reuse across contexts (the "name in seven contexts" effect).
  EXPECT_GT(ns.labels_in_multiple_contexts, 3u);
  // Both datasets have reference-rich graph structure.
  EXPECT_GT(xs.referenced_node_fraction, 0.01);
  EXPECT_GT(ns.referenced_node_fraction, 0.01);
}

}  // namespace
}  // namespace mrx
