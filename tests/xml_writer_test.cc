#include <gtest/gtest.h>

#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "tests/test_util.h"
#include "xml/graph_builder.h"
#include "query/data_evaluator.h"
#include "xml/writer.h"

namespace mrx::xml {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;

/// Structural equality of two data graphs: same labels, root, and edge
/// sets (ids included — the writer preserves document order).
::testing::AssertionResult SameGraph(const DataGraph& a,
                                     const DataGraph& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return ::testing::AssertionFailure()
           << "node counts " << a.num_nodes() << " vs " << b.num_nodes();
  }
  if (a.root() != b.root()) {
    return ::testing::AssertionFailure() << "roots differ";
  }
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    if (a.label_name(n) != b.label_name(n)) {
      return ::testing::AssertionFailure()
             << "label of " << n << ": " << a.label_name(n) << " vs "
             << b.label_name(n);
    }
    auto ka = a.children(n);
    auto kb = b.children(n);
    if (std::vector<NodeId>(ka.begin(), ka.end()) !=
        std::vector<NodeId>(kb.begin(), kb.end())) {
      return ::testing::AssertionFailure() << "children of " << n
                                           << " differ";
    }
    for (size_t i = 0; i < ka.size(); ++i) {
      if (a.child_kinds(n)[i] != b.child_kinds(n)[i]) {
        return ::testing::AssertionFailure()
               << "edge kind differs at " << n << "[" << i << "]";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(XmlWriterTest, SimpleTreeRoundTrip) {
  auto g = BuildGraphFromXml("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(g.ok());
  auto text = WriteGraphAsXml(*g);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = BuildGraphFromXml(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(SameGraph(*g, *reparsed));
}

TEST(XmlWriterTest, ReferencesRoundTrip) {
  auto g = BuildGraphFromXml(
      "<site><person id=\"p0\"/><person id=\"p1\"/>"
      "<bidder person=\"p0\"/>"
      "<watch a=\"p0\" b=\"p1\"/></site>");
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_reference_edges(), 3u);
  auto text = WriteGraphAsXml(*g);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = BuildGraphFromXml(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(SameGraph(*g, *reparsed));
}

TEST(XmlWriterTest, Figure1RoundTripIsEquivalent) {
  // The figure graph is hand-built in level order, so node ids are
  // renumbered into document order by the round trip; the structures must
  // still be equivalent: same label census, edge counts, and query
  // answers by label.
  DataGraph g = MakeFigure1Graph();
  auto text = WriteGraphAsXml(g);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = BuildGraphFromXml(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->num_nodes(), g.num_nodes());
  EXPECT_EQ(reparsed->num_edges(), g.num_edges());
  EXPECT_EQ(reparsed->num_reference_edges(), g.num_reference_edges());
  DataEvaluator eval_a(g);
  DataEvaluator eval_b(*reparsed);
  for (const char* text_query :
       {"//site/people/person", "//auction/seller/person",
        "//site/regions/*/item", "//site//item"}) {
    auto pa = PathExpression::Parse(text_query, g.symbols());
    auto pb = PathExpression::Parse(text_query, reparsed->symbols());
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    EXPECT_EQ(eval_a.Evaluate(*pa).size(), eval_b.Evaluate(*pb).size())
        << text_query;
  }
}

TEST(XmlWriterTest, GeneratedDatasetsRoundTrip) {
  {
    auto doc = datagen::GenerateXMarkDocument(
        datagen::XMarkOptions::Scaled(0.01));
    auto g = BuildGraphFromXml(doc);
    ASSERT_TRUE(g.ok());
    auto text = WriteGraphAsXml(*g);
    ASSERT_TRUE(text.ok()) << text.status();
    auto reparsed = BuildGraphFromXml(*text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_TRUE(SameGraph(*g, *reparsed));
  }
  {
    auto doc = datagen::GenerateNasaDocument(0.01, 5);
    ASSERT_TRUE(doc.ok());
    auto g = BuildGraphFromXml(*doc);
    ASSERT_TRUE(g.ok());
    auto text = WriteGraphAsXml(*g);
    ASSERT_TRUE(text.ok()) << text.status();
    auto reparsed = BuildGraphFromXml(*text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_TRUE(SameGraph(*g, *reparsed));
  }
}

TEST(XmlWriterTest, NonTreeContainmentIsRejected) {
  // Two regular parents for node 2.
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {0, 2}, {1, 2}});
  auto text = WriteGraphAsXml(g);
  EXPECT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kFailedPrecondition);
}

TEST(XmlWriterTest, CompactModeHasNoNewlinesInside) {
  auto g = BuildGraphFromXml("<a><b/></a>");
  ASSERT_TRUE(g.ok());
  XmlWriteOptions options;
  options.indent = false;
  auto text = WriteGraphAsXml(*g, options);
  ASSERT_TRUE(text.ok());
  // Only the declaration line break.
  EXPECT_EQ(std::count(text->begin(), text->end(), '\n'), 1);
}

TEST(XmlWriterTest, CustomAttributeNames) {
  auto g = BuildGraphFromXml(
      "<r><a id=\"x\"/><b ref=\"x\"/></r>");
  ASSERT_TRUE(g.ok());
  XmlWriteOptions options;
  options.id_attribute = "oid";
  options.ref_attribute = "link";
  auto text = WriteGraphAsXml(*g, options);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("oid=\""), std::string::npos);
  EXPECT_NE(text->find("link=\""), std::string::npos);
  GraphBuildOptions parse_options;
  parse_options.id_attribute = "oid";
  auto reparsed = BuildGraphFromXml(*text, parse_options);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_reference_edges(), 1u);
}

}  // namespace
}  // namespace mrx::xml
