#include "check/mutation_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/checker.h"
#include "util/rng.h"

namespace mrx::check {
namespace {

MutationTraceOptions SmallOptions() {
  MutationTraceOptions options;
  options.num_steps = 4;
  options.ops_per_batch = 2;
  options.k_max = 2;
  options.gen.max_nodes = 24;
  options.gen.num_queries = 3;
  options.gen.allow_dtd = false;
  return options;
}

TEST(MutationTraceTest, GeneratedTracesReplayClean) {
  const MutationTraceOptions options = SmallOptions();
  size_t applied = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    Rng rng(CaseSeed(11, i));
    const MutationTrace trace = GenerateMutationTrace(rng, options);
    const TraceResult result = RunMutationTrace(trace, options);
    EXPECT_TRUE(result.ok()) << "trace " << i << ": "
                             << result.violations.front();
    EXPECT_GT(result.checks, 0u);
    applied += result.steps_applied;
  }
  // Random batches may individually be rejected, but across 20 traces the
  // harness must actually exercise mutations, not just the seed state.
  EXPECT_GT(applied, 20u);
}

TEST(MutationTraceTest, GenerationIsDeterministicInSeed) {
  const MutationTraceOptions options = SmallOptions();
  Rng a(CaseSeed(3, 7));
  Rng b(CaseSeed(3, 7));
  EXPECT_EQ(GenerateMutationTrace(a, options).ToText(),
            GenerateMutationTrace(b, options).ToText());
}

TEST(MutationTraceTest, SerializeParseRoundTrip) {
  const MutationTraceOptions options = SmallOptions();
  Rng rng(CaseSeed(5, 2));
  const MutationTrace trace = GenerateMutationTrace(rng, options);
  ASSERT_FALSE(trace.steps.empty());

  Result<MutationTrace> parsed = ParseTrace(trace.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToText(), trace.ToText());
  EXPECT_EQ(parsed->initial.labels, trace.initial.labels);
  EXPECT_EQ(parsed->queries.size(), trace.queries.size());
  EXPECT_EQ(parsed->steps.size(), trace.steps.size());

  // The parsed trace replays to the same verdict.
  const TraceResult original = RunMutationTrace(trace, options);
  const TraceResult replayed = RunMutationTrace(*parsed, options);
  EXPECT_EQ(original.ok(), replayed.ok());
  EXPECT_EQ(original.steps_applied, replayed.steps_applied);
}

TEST(MutationTraceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTrace("").ok());
  EXPECT_FALSE(ParseTrace("n a\n").ok());  // Missing header.
  EXPECT_FALSE(ParseTrace("mrxtrace 1\nbogus line\n").ok());
  EXPECT_FALSE(ParseTrace("mrxtrace 1\nn a\ne 0 1 sideways\n").ok());
  EXPECT_FALSE(ParseTrace("mrxtrace 1\nn a\nbatch\nappend 0 2 x\n").ok());
}

TEST(MutationTraceTest, HandCraftedTraceReplays) {
  // r(0) -> a(1) -> b(2); append a "b" leaf under the a, then delete it.
  const std::string text =
      "mrxtrace 1\n"
      "root 0\n"
      "n r\nn a\nn b\n"
      "e 0 1 reg\ne 1 2 reg\n"
      "query anchored 1\n"
      "step a 0\nstep b 0\n"
      "batch\n"
      "append 1 1 b 0\n"
      "batch\n"
      "delete 3\n";
  Result<MutationTrace> trace = ParseTrace(text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  MutationTraceOptions options = SmallOptions();
  const TraceResult result = RunMutationTrace(*trace, options);
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_EQ(result.steps_applied, 2u);
}

TEST(MutationTraceTest, ShrinkerKeepsTracesFailingAndDropsNoise) {
  // A trace is "failing" here by an artificial criterion we can control:
  // run with maintain_dk against options that replay with a different
  // query set is not expressible, so instead check the structural
  // contract on a passing trace: shrinking a passing trace returns it
  // unchanged.
  const MutationTraceOptions options = SmallOptions();
  Rng rng(CaseSeed(9, 0));
  const MutationTrace trace = GenerateMutationTrace(rng, options);
  ASSERT_TRUE(RunMutationTrace(trace, options).ok());
  const MutationTrace shrunk = ShrinkMutationTrace(trace, options, 50);
  EXPECT_EQ(shrunk.ToText(), trace.ToText());
}

TEST(MutationTraceTest, CheckRunAggregatesCleanTraces) {
  MutationCheckOptions options;
  options.seed = 17;
  options.num_traces = 10;
  options.trace = SmallOptions();
  std::ostringstream log;
  options.log = &log;
  const MutationCheckSummary summary = RunMutationTraceCheck(options);
  EXPECT_TRUE(summary.ok()) << (summary.failures.empty()
                                    ? "violations without failures"
                                    : summary.failures.front().note);
  EXPECT_EQ(summary.traces, 10u);
  EXPECT_GT(summary.checks, 0u);
  EXPECT_TRUE(summary.failures.empty());
}

TEST(MutationTraceTest, StressRunStaysExact) {
  MutationStressOptions options;
  options.seed = 23;
  options.threads = 2;
  options.mutation_batches = 10;
  options.num_queries = 4;
  options.max_nodes = 32;
  const MutationStressReport report = RunMutationStress(options);
  EXPECT_TRUE(report.ok()) << "mismatches=" << report.mismatches
                           << " epoch_regressions=" << report.epoch_regressions
                           << " final=" << report.final_mismatches;
  EXPECT_GT(report.queries_run, 0u);
}

}  // namespace
}  // namespace mrx::check
