#include <gtest/gtest.h>

#include <algorithm>

#include "graph/data_graph.h"
#include "graph/symbol_table.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;

TEST(SymbolTableTest, InternAssignsDenseIds) {
  SymbolTable t;
  EXPECT_EQ(t.Intern("a"), 0u);
  EXPECT_EQ(t.Intern("b"), 1u);
  EXPECT_EQ(t.Intern("a"), 0u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Name(0), "a");
  EXPECT_EQ(t.Name(1), "b");
}

TEST(SymbolTableTest, LookupWithoutInterning) {
  SymbolTable t;
  t.Intern("site");
  EXPECT_TRUE(t.Lookup("site").has_value());
  EXPECT_EQ(*t.Lookup("site"), 0u);
  EXPECT_FALSE(t.Lookup("absent").has_value());
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, CopyIsIndependent) {
  SymbolTable t;
  t.Intern("a");
  SymbolTable copy = t;
  copy.Intern("b");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(*copy.Lookup("a"), 0u);
}

TEST(DataGraphTest, BasicShape) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.root(), 0u);
  EXPECT_EQ(g.label_name(0), "r");
  ASSERT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.children(0)[0], 1u);
  EXPECT_EQ(g.children(0)[1], 2u);
  ASSERT_EQ(g.parents(2).size(), 2u);
  EXPECT_EQ(g.parents(2)[0], 0u);
  EXPECT_EQ(g.parents(2)[1], 1u);
  EXPECT_TRUE(g.parents(0).empty());
}

TEST(DataGraphTest, LabelBuckets) {
  DataGraph g = MakeGraph({"r", "b", "a", "b"}, {{0, 1}, {0, 2}, {0, 3}});
  LabelId b = *g.symbols().Lookup("b");
  auto nodes = g.nodes_with_label(b);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 1u);
  EXPECT_EQ(nodes[1], 3u);
  // Out-of-range label ids yield empty spans, not UB.
  EXPECT_TRUE(g.nodes_with_label(999).empty());
}

TEST(DataGraphTest, ParallelEdgesAreDeduplicated) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddNode("x");
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1, EdgeKind::kReference);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  // Regular kind wins over reference for a duplicated pair.
  EXPECT_EQ(g->child_kinds(0)[0], EdgeKind::kRegular);
  EXPECT_EQ(g->num_reference_edges(), 0u);
}

TEST(DataGraphTest, ReferenceEdgeKindIsTracked) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddNode("x");
  b.AddNode("y");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2, EdgeKind::kReference);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_reference_edges(), 1u);
  EXPECT_EQ(g->child_kinds(1)[0], EdgeKind::kReference);
}

TEST(DataGraphTest, BuildRejectsEmptyGraph) {
  DataGraphBuilder b;
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DataGraphTest, BuildRejectsBadRoot) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.SetRoot(5);
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(DataGraphTest, BuildRejectsDanglingEdge) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddEdge(0, 3);
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(DataGraphTest, Figure1TargetSetsViaAdjacency) {
  DataGraph g = MakeFigure1Graph();
  EXPECT_EQ(g.num_nodes(), 21u);
  // The figure's six dashed lines are reference edges.
  EXPECT_EQ(g.num_reference_edges(), 6u);
  // person nodes are 7, 8, 9 as in the figure.
  LabelId person = *g.symbols().Lookup("person");
  auto persons = g.nodes_with_label(person);
  EXPECT_EQ(std::vector<NodeId>(persons.begin(), persons.end()),
            (std::vector<NodeId>{7, 8, 9}));
}

TEST(DataGraphTest, DotExportMentionsEveryNode) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0:r"), std::string::npos);
  EXPECT_NE(dot.find("1:a"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(DataGraphTest, DotMarksReferenceEdgesDashed) {
  DataGraphBuilder b;
  b.AddNode("r");
  b.AddNode("x");
  b.AddEdge(0, 1, EdgeKind::kReference);
  DataGraph g = std::move(std::move(b).Build()).value();
  EXPECT_NE(g.ToDot().find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace mrx
