#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace mrx {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsEveryElementOnce) {
  for (size_t threads : {0u, 1u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), 1u);
    std::vector<int> hits(100, 0);
    pool.ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, WorkersCoverRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  // Disjoint-slot writes need no synchronization per the ParallelFor
  // contract; a dropped or double-run chunk shows up as hits != 1.
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndOffsetRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<int> hits(50, 0);
  pool.ParallelFor(10, 40, 4, [&](size_t lo, size_t hi) {
    ASSERT_GE(lo, 10u);
    ASSERT_LE(hi, 40u);
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 10 && i < 40 ? 1 : 0) << i;
  }
}

TEST(ThreadPoolTest, ReduceIsDeterministicAcrossThreadCounts) {
  // A non-commutative, non-associative-under-reordering fold: string
  // concatenation of chunk summaries. Identical at every thread count
  // because partials fold in ascending chunk order on the caller.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduce(
        0, 1000, 7, std::string(),
        [](size_t lo, size_t hi) {
          return std::to_string(lo) + "-" + std::to_string(hi) + ";";
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(5), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, ReduceComputesTheSum) {
  ThreadPool pool(4);
  std::vector<uint64_t> values(4096);
  std::iota(values.begin(), values.end(), 1);
  const uint64_t sum = pool.ParallelReduce(
      0, values.size(), 1, uint64_t{0},
      [&](size_t lo, size_t hi) {
        uint64_t s = 0;
        for (size_t i = lo; i < hi; ++i) s += values[i];
        return s;
      },
      [](uint64_t acc, uint64_t part) { return acc + part; });
  EXPECT_EQ(sum, uint64_t{4096} * 4097 / 2);
}

TEST(ThreadPoolTest, ManySmallDispatchesComplete) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000u);
}

TEST(ThreadPoolTest, ConcurrentDispatchersQueueSafely) {
  // Dispatch is serialized internally: two threads sharing a pool must
  // both complete with every element covered exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8192);
  auto dispatch = [&](size_t offset) {
    for (int round = 0; round < 8; ++round) {
      pool.ParallelFor(offset, offset + 4096, 16, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  };
  std::thread a(dispatch, 0);
  std::thread b(dispatch, 4096);
  a.join();
  b.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 8);
}

TEST(ThreadPoolTest, StatsCountJobsAndChunks) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 1000, 1, [](size_t, size_t) {});
  pool.ParallelFor(0, 1000, 1, [](size_t, size_t) {});
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_GE(stats.chunks, 2u);
}

}  // namespace
}  // namespace mrx
