#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/parser.h"

namespace mrx::xml {
namespace {

/// Records events as compact strings for easy assertions.
class RecordingHandler : public ParseEventHandler {
 public:
  Status StartElement(std::string_view name,
                      const std::vector<Attribute>& attributes) override {
    std::string e = "<" + std::string(name);
    for (const auto& a : attributes) e += " " + a.name + "=" + a.value;
    e += ">";
    events.push_back(std::move(e));
    return Status::Ok();
  }
  Status EndElement(std::string_view name) override {
    events.push_back("</" + std::string(name) + ">");
    return Status::Ok();
  }
  Status CharacterData(std::string_view text) override {
    events.push_back("#" + std::string(text));
    return Status::Ok();
  }

  std::vector<std::string> events;
};

std::vector<std::string> ParseEvents(std::string_view doc, Status* status) {
  RecordingHandler handler;
  Parser parser;
  *status = parser.Parse(doc, &handler);
  return handler.events;
}

std::vector<std::string> ParseOk(std::string_view doc) {
  Status s;
  auto events = ParseEvents(doc, &s);
  EXPECT_TRUE(s.ok()) << s;
  return events;
}

Status ParseError(std::string_view doc) {
  Status s;
  ParseEvents(doc, &s);
  return s;
}

TEST(XmlParserTest, SimpleElement) {
  auto events = ParseOk("<a></a>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "</a>"}));
}

TEST(XmlParserTest, SelfClosingTag) {
  auto events = ParseOk("<a/>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "</a>"}));
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto events = ParseOk("<a>x<b>y</b>z</a>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "#x", "<b>", "#y",
                                              "</b>", "#z", "</a>"}));
}

TEST(XmlParserTest, Attributes) {
  auto events = ParseOk("<a id=\"i1\" ref='r2'/>");
  EXPECT_EQ(events[0], "<a id=i1 ref=r2>");
}

TEST(XmlParserTest, AttributeEntityDecoding) {
  auto events = ParseOk("<a v=\"x&amp;y&lt;z\"/>");
  EXPECT_EQ(events[0], "<a v=x&y<z>");
}

TEST(XmlParserTest, TextEntities) {
  auto events = ParseOk("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(events[1], "#<>&'\"");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  auto events = ParseOk("<a>&#65;&#x42;</a>");
  EXPECT_EQ(events[1], "#AB");
}

TEST(XmlParserTest, NumericReferenceUtf8MultiByte) {
  auto events = ParseOk("<a>&#233;</a>");  // é
  EXPECT_EQ(events[1], "#\xC3\xA9");
}

TEST(XmlParserTest, CommentsAreSkipped) {
  auto events = ParseOk("<a><!-- hi <b> --><c/></a>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "<c>", "</c>", "</a>"}));
}

TEST(XmlParserTest, ProcessingInstructionsAreSkipped) {
  auto events = ParseOk("<a><?php echo ?><c/></a>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "<c>", "</c>", "</a>"}));
}

TEST(XmlParserTest, CdataIsLiteralText) {
  auto events = ParseOk("<a><![CDATA[x<y&z]]></a>");
  EXPECT_EQ(events[1], "#x<y&z");
}

TEST(XmlParserTest, XmlDeclarationAndDoctype) {
  auto events = ParseOk(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE site [ <!ELEMENT site (a)> ]>\n"
      "<site><a/></site>");
  EXPECT_EQ(events.front(), "<site>");
  EXPECT_EQ(events.back(), "</site>");
}

TEST(XmlParserTest, TrailingCommentsAllowed) {
  EXPECT_TRUE(ParseOk("<a/><!-- done -->").size() == 2);
}

TEST(XmlParserTest, MismatchedTagIsError) {
  Status s = ParseError("<a><b></a></b>");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, UnterminatedElementIsError) {
  EXPECT_FALSE(ParseError("<a><b>").ok());
}

TEST(XmlParserTest, ContentAfterRootIsError) {
  EXPECT_FALSE(ParseError("<a/><b/>").ok());
}

TEST(XmlParserTest, DuplicateAttributeIsError) {
  EXPECT_FALSE(ParseError("<a x=\"1\" x=\"2\"/>").ok());
}

TEST(XmlParserTest, UnknownEntityIsError) {
  EXPECT_FALSE(ParseError("<a>&nosuch;</a>").ok());
}

TEST(XmlParserTest, UnquotedAttributeIsError) {
  EXPECT_FALSE(ParseError("<a x=1/>").ok());
}

TEST(XmlParserTest, ErrorsCarryLineAndColumn) {
  Status s = ParseError("<a>\n<b></c>\n</a>");
  EXPECT_NE(s.message().find("2:"), std::string::npos) << s;
}

TEST(XmlParserTest, HandlerErrorAbortsParse) {
  class FailingHandler : public RecordingHandler {
   public:
    Status StartElement(std::string_view name,
                        const std::vector<Attribute>& attrs) override {
      if (name == "bad") return Status::InvalidArgument("stop");
      return RecordingHandler::StartElement(name, attrs);
    }
  };
  FailingHandler handler;
  Parser parser;
  Status s = parser.Parse("<a><bad/><c/></a>", &handler);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // <c> was never delivered.
  for (const auto& e : handler.events) EXPECT_EQ(e.find("<c>"), std::string::npos);
}

TEST(XmlParserTest, Utf8BomIsSkipped) {
  auto events = ParseOk("\xEF\xBB\xBF<a/>");
  EXPECT_EQ(events, (std::vector<std::string>{"<a>", "</a>"}));
}

TEST(XmlParserTest, DeeplyNestedDocument) {
  std::string doc;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) doc += "<d>";
  for (int i = 0; i < kDepth; ++i) doc += "</d>";
  auto events = ParseOk(doc);
  EXPECT_EQ(events.size(), 2u * kDepth);
}

TEST(XmlParserTest, ManyAttributes) {
  std::string doc = "<a";
  for (int i = 0; i < 200; ++i) {
    doc += " k" + std::to_string(i) + "=\"v" + std::to_string(i) + "\"";
  }
  doc += "/>";
  auto events = ParseOk(doc);
  EXPECT_NE(events[0].find("k199=v199"), std::string::npos);
}

TEST(XmlParserTest, CrLfLineEndingsCountLines) {
  Status s = ParseError("<a>\r\n<b></c>\r\n</a>");
  EXPECT_NE(s.message().find("2:"), std::string::npos) << s;
}

TEST(XmlParserTest, WhitespaceOnlyTextIsStillReported) {
  auto events = ParseOk("<a> <b/> </a>");
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[1], "# ");
}

}  // namespace
}  // namespace mrx::xml
