// Focused tests of the M*(k) query strategies on edge cases: queries
// longer than the finest component, prefilter boundary positions, anchored
// paths, wildcard steps, and cost accounting between strategies.

#include <gtest/gtest.h>

#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(MStarQueryTest, QueryLongerThanFinestComponent) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(Q(g, "//people/person"));  // Creates I1 only.
  ASSERT_EQ(index.num_components(), 2u);
  PathExpression longer = Q(g, "//root/site/people/person");
  EXPECT_EQ(index.QueryTopDown(longer).answer, eval.Evaluate(longer));
  EXPECT_EQ(index.QueryNaive(longer).answer, eval.Evaluate(longer));
  EXPECT_EQ(index.QueryWithPrefilter(longer, 2, 3).answer,
            eval.Evaluate(longer));
}

TEST(MStarQueryTest, PrefilterAtEveryBoundary) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//site/auctions/auction/seller/person");
  index.Refine(p);
  std::vector<NodeId> expected = eval.Evaluate(p);
  ASSERT_FALSE(expected.empty());
  for (size_t b = 0; b < p.num_steps(); ++b) {
    for (size_t e = b; e < p.num_steps(); ++e) {
      EXPECT_EQ(index.QueryWithPrefilter(p, b, e).answer, expected)
          << "subpath [" << b << "," << e << "]";
    }
  }
}

TEST(MStarQueryTest, AnchoredTopDown) {
  DataGraph g = MakeGraph({"r", "a", "r", "a"}, {{0, 1}, {0, 2}, {2, 3}});
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression anchored = Q(g, "/r/a");
  EXPECT_EQ(index.QueryTopDown(anchored).answer, eval.Evaluate(anchored));
  EXPECT_EQ(index.QueryTopDown(anchored).answer, (std::vector<NodeId>{1}));
  EXPECT_FALSE(index.QueryTopDown(anchored).precise);
}

TEST(MStarQueryTest, WildcardTopDown) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//site/regions/*/item");
  EXPECT_EQ(index.QueryTopDown(p).answer, eval.Evaluate(p));
  EXPECT_EQ(index.QueryTopDown(p).answer, (std::vector<NodeId>{12, 13, 14}));
}

TEST(MStarQueryTest, RefinedWildcardFupBecomesPrecise) {
  DataGraph g = MakeFigure1Graph();
  MStarIndex index(g);
  PathExpression p = Q(g, "//site/regions/*/item");
  index.Refine(p);
  ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  QueryResult r = index.QueryNaive(p);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{12, 13, 14}));
}

TEST(MStarQueryTest, TopDownCostCountsDescentAndFrontiers) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  QueryResult r = index.QueryTopDown(Q(g, "//r/a/b"));
  // Level 0 visits r in I0 (1), descends into I1 (1 subnode) and steps to
  // a (1), descends into I2 (1) and steps to b (1): small but non-zero.
  EXPECT_GE(r.stats.index_nodes_visited, 5u);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
}

TEST(MStarQueryTest, UnknownLabelQueriesAreEmptyEverywhere) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  PathExpression p = Q(g, "//does/not/exist");
  EXPECT_TRUE(index.QueryNaive(p).answer.empty());
  EXPECT_TRUE(index.QueryTopDown(p).answer.empty());
  EXPECT_TRUE(index.QueryWithPrefilter(p, 0, 2).answer.empty());
}

TEST(MStarQueryTest, StrategiesAgreeOnLongRandomQueries) {
  DataGraph g = RandomGraph(123, 80, 4, 40);
  DataEvaluator eval(g);
  MStarIndex index(g);
  // Refine a couple of length-5 FUPs to build deep components.
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 2; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 2; ++b) {
      PathExpression p({a, b, a, b, a, b}, false);
      if (eval.Evaluate(p).empty()) continue;
      index.Refine(p);
      ++refined;
    }
  }
  ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  // Cross-check strategies on a batch of random two- and four-step paths.
  for (LabelId a = 0; a < symbols.size(); ++a) {
    for (LabelId b = 0; b < symbols.size(); ++b) {
      PathExpression p({a, b, a, b}, false);
      std::vector<NodeId> expected = eval.Evaluate(p);
      ASSERT_EQ(index.QueryNaive(p).answer, expected);
      ASSERT_EQ(index.QueryTopDown(p).answer, expected);
      ASSERT_EQ(index.QueryWithPrefilter(p, 1, 2).answer, expected);
    }
  }
}

TEST(MStarQueryTest, PrefilterSingleStepSubpath) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//r/a/b");
  // Subpath = just the final label.
  EXPECT_EQ(index.QueryWithPrefilter(p, 2, 2).answer, eval.Evaluate(p));
  // Subpath = just the first label.
  EXPECT_EQ(index.QueryWithPrefilter(p, 0, 0).answer, eval.Evaluate(p));
}

}  // namespace
}  // namespace mrx
