#include <gtest/gtest.h>

#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "xml/graph_builder.h"

namespace mrx::datagen {
namespace {

TEST(DtdParseTest, ElementWithSequence) {
  auto dtd = Dtd::Parse("<!ELEMENT a (b, c?, d*)> <!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY> <!ELEMENT d EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root_name(), "a");
  const DtdElement* a = dtd->FindElement("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->content_kind, ContentKind::kChildren);
  ASSERT_EQ(a->model->children.size(), 3u);
  EXPECT_EQ(a->model->kind, ParticleKind::kSequence);
  EXPECT_EQ(a->model->children[1]->occurrence, Occurrence::kOptional);
  EXPECT_EQ(a->model->children[2]->occurrence, Occurrence::kZeroOrMore);
}

TEST(DtdParseTest, ChoiceAndNestedGroups) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a ((b | c)+, d)> <!ELEMENT b EMPTY>"
      "<!ELEMENT c EMPTY> <!ELEMENT d EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const DtdElement* a = dtd->FindElement("a");
  ASSERT_EQ(a->model->children.size(), 2u);
  const Particle& group = *a->model->children[0];
  EXPECT_EQ(group.kind, ParticleKind::kChoice);
  EXPECT_EQ(group.occurrence, Occurrence::kOneOrMore);
  EXPECT_EQ(group.children.size(), 2u);
}

TEST(DtdParseTest, MixedContent) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT p (#PCDATA | em | strong)*> <!ELEMENT em (#PCDATA)>"
      "<!ELEMENT strong (#PCDATA)>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const DtdElement* p = dtd->FindElement("p");
  EXPECT_EQ(p->content_kind, ContentKind::kMixed);
  EXPECT_EQ(p->model->children.size(), 2u);
  const DtdElement* em = dtd->FindElement("em");
  EXPECT_EQ(em->content_kind, ContentKind::kMixed);
  EXPECT_TRUE(em->model->children.empty());
}

TEST(DtdParseTest, EmptyAndAny) {
  auto dtd = Dtd::Parse("<!ELEMENT a ANY> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->FindElement("a")->content_kind, ContentKind::kAny);
  EXPECT_EQ(dtd->FindElement("b")->content_kind, ContentKind::kEmpty);
}

TEST(DtdParseTest, Attributes) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a EMPTY>"
      "<!ATTLIST a id ID #REQUIRED"
      "            ref IDREF #IMPLIED"
      "            refs IDREFS #REQUIRED"
      "            kind (x | y | z) \"x\""
      "            note CDATA #FIXED \"fixed\">");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const DtdElement* a = dtd->FindElement("a");
  ASSERT_EQ(a->attributes.size(), 5u);
  EXPECT_EQ(a->attributes[0].type, AttributeType::kId);
  EXPECT_EQ(a->attributes[0].presence, AttributePresence::kRequired);
  EXPECT_EQ(a->attributes[1].type, AttributeType::kIdref);
  EXPECT_EQ(a->attributes[2].type, AttributeType::kIdrefs);
  EXPECT_EQ(a->attributes[3].type, AttributeType::kEnumeration);
  EXPECT_EQ(a->attributes[3].enum_values.size(), 3u);
  EXPECT_EQ(a->attributes[3].default_value, "x");
  EXPECT_EQ(a->attributes[4].presence, AttributePresence::kFixed);
  EXPECT_EQ(a->attributes[4].default_value, "fixed");
}

TEST(DtdParseTest, CommentsAndEntitiesSkipped) {
  auto dtd = Dtd::Parse(
      "<!-- a comment --> <!ENTITY % x \"ignored\">"
      "<!ELEMENT a EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root_name(), "a");
}

TEST(DtdParseTest, Errors) {
  EXPECT_FALSE(Dtd::Parse("").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT >").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b,)> ").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b | c, d)>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>").ok());
  EXPECT_FALSE(Dtd::Parse("<!WEIRD a>").ok());
}

TEST(DtdGeneratorTest, GeneratesWellFormedXml) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT root (item*)>"
      "<!ELEMENT item (name, tag*)>"
      "<!ELEMENT name (#PCDATA)>"
      "<!ELEMENT tag EMPTY>"
      "<!ATTLIST item id ID #REQUIRED>"
      "<!ATTLIST tag ref IDREF #REQUIRED>");
  ASSERT_TRUE(dtd.ok());
  DtdGeneratorOptions options;
  options.seed = 3;
  options.min_elements = 200;
  options.max_elements = 400;
  auto doc = GenerateDocument(*dtd, options);
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto g = xml::BuildGraphFromXml(*doc);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_GE(g->num_nodes(), 200u);
  EXPECT_LE(g->num_nodes(), 440u);
  EXPECT_EQ(g->label_name(g->root()), "root");
  // Every tag's IDREF resolved against a real item id.
  EXPECT_GT(g->num_reference_edges(), 0u);
}

TEST(DtdGeneratorTest, DeterministicPerSeed) {
  auto dtd = Dtd::Parse("<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  DtdGeneratorOptions options;
  options.seed = 5;
  auto d1 = GenerateDocument(*dtd, options);
  auto d2 = GenerateDocument(*dtd, options);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d1, *d2);
  options.seed = 6;
  auto d3 = GenerateDocument(*dtd, options);
  EXPECT_NE(*d1, *d3);
}

TEST(DtdGeneratorTest, RecursiveDtdTerminates) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a (b?)>"
      "<!ELEMENT b (a, a?)>");
  ASSERT_TRUE(dtd.ok());
  DtdGeneratorOptions options;
  options.seed = 9;
  options.optional_probability = 0.95;  // Aggressive recursion.
  options.max_depth = 12;
  options.max_elements = 5000;
  auto doc = GenerateDocument(*dtd, options);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(xml::BuildGraphFromXml(*doc).ok());
}

TEST(DtdGeneratorTest, UndeclaredElementIsAnError) {
  auto dtd = Dtd::Parse("<!ELEMENT a (ghost)>");
  ASSERT_TRUE(dtd.ok());
  DtdGeneratorOptions options;
  EXPECT_FALSE(GenerateDocument(*dtd, options).ok());
}

TEST(NasaTest, DtdParses) {
  auto dtd = Dtd::Parse(NasaDatasetDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root_name(), "datasets");
  // The paper highlights reuse of `name` in many contexts — make sure the
  // transcription keeps name/title/date/description multi-context.
  EXPECT_NE(dtd->FindElement("name"), nullptr);
  EXPECT_NE(dtd->FindElement("author"), nullptr);
  EXPECT_NE(dtd->FindElement("seeAlso"), nullptr);
}

TEST(NasaTest, GeneratedDocumentLoadsAndHasReferences) {
  auto doc = GenerateNasaDocument(/*scale=*/0.02, /*seed=*/1);
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto g = xml::BuildGraphFromXml(*doc);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_GT(g->num_nodes(), 1000u);
  EXPECT_GT(g->num_reference_edges(), 0u);
  EXPECT_EQ(g->label_name(g->root()), "datasets");
}

TEST(NasaTest, ScaleControlsSize) {
  auto small = GenerateNasaDocument(0.01, 1);
  auto large = GenerateNasaDocument(0.05, 1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->size() * 2, large->size());
}

TEST(XMarkTest, GeneratedDocumentLoads) {
  auto doc = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.02));
  auto g = xml::BuildGraphFromXml(doc);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->label_name(g->root()), "site");
  EXPECT_GT(g->num_reference_edges(), 0u);
  // The auction-site vocabulary is present.
  for (const char* label :
       {"regions", "africa", "item", "incategory", "person", "open_auction",
        "bidder", "personref", "closed_auction", "catgraph", "edge",
        "parlist", "listitem", "keyword"}) {
    EXPECT_TRUE(g->symbols().Lookup(label).has_value()) << label;
  }
}

TEST(XMarkTest, ReferencesPointAtRightLabels) {
  auto doc = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.02));
  auto g = xml::BuildGraphFromXml(doc);
  ASSERT_TRUE(g.ok());
  // Every bidder/personref reference edge targets a person node.
  LabelId personref = *g->symbols().Lookup("personref");
  LabelId person = *g->symbols().Lookup("person");
  size_t checked = 0;
  for (NodeId n : g->nodes_with_label(personref)) {
    auto kids = g->children(n);
    auto kinds = g->child_kinds(n);
    for (size_t i = 0; i < kids.size(); ++i) {
      if (kinds[i] == EdgeKind::kReference) {
        EXPECT_EQ(g->label(kids[i]), person);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(XMarkTest, DeterministicPerSeed) {
  auto a = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.01, 3));
  auto b = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.01, 3));
  auto c = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.01, 4));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(XMarkTest, ScaleRoughlyLinear) {
  auto small = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.01));
  auto large = GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.04));
  EXPECT_LT(small.size() * 2, large.size());
}

}  // namespace
}  // namespace mrx::datagen
