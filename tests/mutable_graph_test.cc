#include "mutate/mutable_graph.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "mutate/mutation.h"
#include "tests/test_util.h"

namespace mrx::mutate {
namespace {

using ::mrx::testing::MakeFigure3Graph;
using ::mrx::testing::MakeGraph;

/// Structural fingerprint for whole-graph equality: label names in node
/// order, the root, and the sorted (from, to, kind) edge list.
using GraphSig =
    std::tuple<std::vector<std::string>, NodeId,
               std::vector<std::tuple<NodeId, NodeId, int>>>;

GraphSig SigOf(const DataGraph& g) {
  std::vector<std::string> labels;
  for (NodeId n = 0; n < g.num_nodes(); ++n) labels.push_back(g.label_name(n));
  std::vector<std::tuple<NodeId, NodeId, int>> edges;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto kids = g.children(n);
    const auto kinds = g.child_kinds(n);
    for (size_t i = 0; i < kids.size(); ++i) {
      edges.emplace_back(n, kids[i], static_cast<int>(kinds[i]));
    }
  }
  std::sort(edges.begin(), edges.end());
  return {std::move(labels), g.root(), std::move(edges)};
}

std::vector<uint32_t> Identity(size_t n) {
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
  return ids;
}

TEST(MutableGraphTest, SeedMaterializesIdentically) {
  const DataGraph g = mrx::testing::MakeFigure1Graph();
  MutableDataGraph live(g);
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SigOf(mat->graph), SigOf(g));
  EXPECT_EQ(mat->stable_of, Identity(g.num_nodes()));
}

TEST(MutableGraphTest, AppendLeafShowsUpInMaterialized) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  auto added = live.AppendSubtree(1, [] {
    SubtreeSpec s;
    s.labels = {"x"};
    return s;
  }());
  ASSERT_TRUE(added.ok());
  ASSERT_EQ(added->size(), 1u);
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  const DataGraph expected = MakeGraph(
      {"r", "a", "c", "d", "b", "b", "b", "b", "b", "b", "x"},
      {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 5}, {2, 6}, {3, 7}, {3, 8},
       {3, 9}, {1, 10}});
  EXPECT_EQ(SigOf(mat->graph), SigOf(expected));
}

TEST(MutableGraphTest, AppendSubtreeWithInternalRefCycle) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  SubtreeSpec spec;
  spec.labels = {"u", "v", "w"};
  spec.edges = {{0, 1, EdgeKind::kRegular},
                {0, 2, EdgeKind::kRegular},
                {1, 2, EdgeKind::kReference},
                {2, 1, EdgeKind::kReference}};
  ASSERT_TRUE(live.AppendSubtree(0, spec).ok());
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->graph.num_nodes(), g.num_nodes() + 3);
  EXPECT_EQ(mat->graph.num_reference_edges(), 2u);
}

TEST(MutableGraphTest, DeleteSubtreeSeversAndReportsStrandedRefs) {
  // 0:r -> 1:a -> 2:b -> 3:c ; survivor 4:s with ref 4->2 (into doomed);
  // doomed 3 has ref 3->4 (out of doomed, strands 4's ref parent).
  DataGraphBuilder b;
  for (const char* l : {"r", "a", "b", "c", "s"}) b.AddNode(l);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(0, 4);
  b.AddEdge(4, 2, EdgeKind::kReference);
  b.AddEdge(3, 4, EdgeKind::kReference);
  b.SetRoot(0);
  const DataGraph g = std::move(std::move(b).Build()).value();

  MutableDataGraph live(g);
  auto report = live.DeleteSubtree(2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->removed, (std::vector<uint32_t>{2, 3}));
  // Node 4 lost its ref parent 3 (doomed -> survivor edge dropped).
  EXPECT_EQ(report->ref_orphaned, (std::vector<uint32_t>{4}));
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  const DataGraph expected = MakeGraph({"r", "a", "s"}, {{0, 1}, {0, 2}});
  EXPECT_EQ(SigOf(mat->graph), SigOf(expected));
  // The survivor's dangling ref child (4 -> 2) was severed too.
  EXPECT_EQ(mat->graph.num_reference_edges(), 0u);
}

TEST(MutableGraphTest, DeleteRootRejected) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  auto report = live.DeleteSubtree(0);
  EXPECT_FALSE(report.ok());
  // Also via a batch: the batch must roll back cleanly.
  auto touch = live.ApplyBatch({Mutation::Delete(0)}, Identity(g.num_nodes()));
  EXPECT_FALSE(touch.ok());
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SigOf(mat->graph), SigOf(g));
}

TEST(MutableGraphTest, AppendUnderJustDeletedParentRollsBackWholeBatch) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  // Delete(1) dooms {1, 4}; the append then targets 4 -> the whole batch
  // (including the delete) must unwind.
  MutationBatch batch{Mutation::Delete(1), Mutation::AppendLeaf(4, "x")};
  auto touch = live.ApplyBatch(batch, Identity(g.num_nodes()));
  ASSERT_FALSE(touch.ok());
  EXPECT_NE(touch.status().message().find("mutation 2"), std::string::npos);
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SigOf(mat->graph), SigOf(g));
  EXPECT_EQ(live.num_alive(), g.num_nodes());
  EXPECT_EQ(live.num_edges(), g.num_edges());
}

TEST(MutableGraphTest, RefEdgeCycleAccepted) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  // 4 -> 1 closes a cycle with the regular path 1 -> 4; then 5 <-> 6.
  EXPECT_TRUE(live.AddRefEdge(4, 1).ok());
  EXPECT_TRUE(live.AddRefEdge(5, 6).ok());
  EXPECT_TRUE(live.AddRefEdge(6, 5).ok());
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->graph.num_reference_edges(), 3u);
  EXPECT_EQ(mat->graph.num_edges(), g.num_edges() + 3);
}

TEST(MutableGraphTest, RefEdgeValidation) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  // Duplicate of an existing (from, to) pair: the builder invariant is one
  // edge per pair, whatever the kind.
  EXPECT_FALSE(live.AddRefEdge(0, 1).ok());
  EXPECT_FALSE(live.RemoveRefEdge(0, 1).ok());  // Regular edge, not a ref.
  EXPECT_FALSE(live.RemoveRefEdge(5, 6).ok());  // No such edge.
  ASSERT_TRUE(live.AddRefEdge(5, 6).ok());
  EXPECT_TRUE(live.RemoveRefEdge(5, 6).ok());
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SigOf(mat->graph), SigOf(g));
}

TEST(MutableGraphTest, MidBatchFailureRollsBackEarlierOps) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  MutationBatch batch{Mutation::AppendLeaf(2, "y"), Mutation::AddRef(5, 6),
                      Mutation::AddRef(0, 1)};  // Last op: duplicate pair.
  auto touch = live.ApplyBatch(batch, Identity(g.num_nodes()));
  ASSERT_FALSE(touch.ok());
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(SigOf(mat->graph), SigOf(g));
  EXPECT_EQ(live.num_edges(), g.num_edges());
  EXPECT_EQ(live.num_alive(), g.num_nodes());
}

TEST(MutableGraphTest, BatchIdsResolveAgainstPreBatchVersion) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  // Batch 1: delete node 1 (dooming {1, 4}).
  auto touch1 = live.ApplyBatch({Mutation::Delete(1)}, Identity(g.num_nodes()));
  ASSERT_TRUE(touch1.ok());
  auto mat1 = live.Materialize();
  ASSERT_TRUE(mat1.ok());
  // In the new version, old node 2 ("c") is now compact id 1.
  ASSERT_EQ(mat1->graph.label_name(1), "c");
  // Batch 2 speaks the new id space via mat1->stable_of.
  auto touch2 = live.ApplyBatch({Mutation::AppendLeaf(1, "z")}, mat1->stable_of);
  ASSERT_TRUE(touch2.ok());
  auto mat2 = live.Materialize();
  ASSERT_TRUE(mat2.ok());
  const DataGraph& g2 = mat2->graph;
  // The "z" leaf hangs under the "c" node.
  const NodeId z = static_cast<NodeId>(g2.num_nodes() - 1);
  EXPECT_EQ(g2.label_name(z), "z");
  bool found = false;
  for (NodeId p : g2.parents(z)) found = found || g2.label_name(p) == "c";
  EXPECT_TRUE(found);
}

TEST(MutableGraphTest, TouchReportsParentSetChanges) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  auto touch = live.ApplyBatch(
      {Mutation::AddRef(5, 6), Mutation::AppendLeaf(3, "w")},
      Identity(g.num_nodes()));
  ASSERT_TRUE(touch.ok());
  // Node 6 gained a parent; the appended node is new, not parent-changed.
  EXPECT_EQ(touch->parent_set_changed, (std::vector<uint32_t>{6}));
  ASSERT_EQ(touch->new_nodes.size(), 1u);
  EXPECT_FALSE(touch->any_deletion);
  EXPECT_EQ(touch->ref_edges_added, 1u);
}

TEST(MutableGraphTest, StableIdsNeverReused) {
  const DataGraph g = MakeFigure3Graph();
  MutableDataGraph live(g);
  auto touch1 =
      live.ApplyBatch({Mutation::AppendLeaf(0, "x")}, Identity(g.num_nodes()));
  ASSERT_TRUE(touch1.ok());
  const uint32_t first = touch1->new_nodes[0];
  auto mat = live.Materialize();
  ASSERT_TRUE(mat.ok());
  auto touch2 = live.ApplyBatch(
      {Mutation::Delete(mat->compact_of[first]), Mutation::AppendLeaf(0, "y")},
      mat->stable_of);
  ASSERT_TRUE(touch2.ok());
  EXPECT_GT(touch2->new_nodes[0], first);  // The dead slot is not recycled.
  EXPECT_FALSE(live.alive(first));
}

}  // namespace
}  // namespace mrx::mutate
