#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "mutate/mutation.h"
#include "mutate/random_batch.h"
#include "query/data_evaluator.h"
#include "server/concurrent_session.h"
#include "server/query_server.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace mrx::server {
namespace {

using ::mrx::testing::MakeFigure1Graph;
using ::mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(ConcurrentMutationTest, ApplyPublishesNewVersion) {
  const DataGraph g = MakeFigure3Graph();
  ConcurrentSession session(g);
  EXPECT_EQ(session.graph_version(), 0u);
  EXPECT_EQ(session.graph_snapshot()->num_nodes(), g.num_nodes());

  auto receipt =
      session.ApplyMutations({mutate::Mutation::AppendLeaf(0, "z")});
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt->batch.version, 1u);
  EXPECT_EQ(receipt->batch.new_nodes.size(), 1u);
  EXPECT_EQ(session.graph_version(), 1u);

  std::shared_ptr<const DataGraph> snapshot = session.graph_snapshot();
  EXPECT_EQ(snapshot->num_nodes(), g.num_nodes() + 1);
  // graph() keeps returning the seed (the pre-mutation contract).
  EXPECT_EQ(session.graph().num_nodes(), g.num_nodes());
}

TEST(ConcurrentMutationTest, RejectedBatchChangesNothing) {
  const DataGraph g = MakeFigure3Graph();
  ConcurrentSession session(g);
  const uint64_t epoch = session.index_epoch();
  // Deleting the root is invalid; the batch must be rejected atomically.
  auto receipt = session.ApplyMutations(
      {mutate::Mutation::AppendLeaf(1, "x"), mutate::Mutation::Delete(0)});
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(session.graph_version(), 0u);
  EXPECT_EQ(session.index_epoch(), epoch);
  EXPECT_EQ(session.graph_snapshot()->num_nodes(), g.num_nodes());
}

TEST(ConcurrentMutationTest, AnswersTrackTheMutatedGraph) {
  const DataGraph g = MakeFigure1Graph();
  ConcurrentSession session(g);
  const PathExpression q = Q(g, "//auction/bidder");

  Rng rng(20260808);
  mutate::RandomBatchOptions gen;
  gen.num_ops = 3;
  for (int step = 0; step < 12; ++step) {
    std::shared_ptr<const DataGraph> before = session.graph_snapshot();
    auto receipt =
        session.ApplyMutations(mutate::GenerateRandomBatch(rng, *before, gen));
    if (!receipt.ok()) continue;  // Ops may interact; a reject is a no-op.
    std::shared_ptr<const DataGraph> now = session.graph_snapshot();
    DataEvaluator oracle(*now);
    EXPECT_EQ(session.Query(q).answer, oracle.Evaluate(q)) << "step " << step;
  }
  EXPECT_GT(session.graph_version(), 0u);
}

TEST(ConcurrentMutationTest, PromotedFupsSurviveMutations) {
  const DataGraph g = MakeFigure1Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  ConcurrentSession session(g, options);
  const PathExpression q = Q(g, "//auction/seller");

  // Drive the query hot enough to be promoted and published.
  for (int i = 0; i < 4; ++i) session.Query(q);
  session.DrainRefinements();
  ASSERT_GE(session.refinements_applied(), 1u);
  const size_t refined_components = session.published_components();

  auto receipt =
      session.ApplyMutations({mutate::Mutation::AppendLeaf(0, "auction")});
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();

  // The rebuilt index replayed the promoted FUP: the published hierarchy
  // matches a fresh session on the new graph that promoted the same query.
  std::shared_ptr<const DataGraph> now = session.graph_snapshot();
  ConcurrentSession oracle(*now, options);
  for (int i = 0; i < 4; ++i) oracle.Query(q);
  oracle.DrainRefinements();
  EXPECT_EQ(session.published_components(), oracle.published_components());
  EXPECT_GE(session.published_components(), refined_components);
  DataEvaluator ground_truth(*now);
  EXPECT_EQ(session.Query(q).answer, ground_truth.Evaluate(q));
}

TEST(ConcurrentMutationTest, ReadersStayExactDuringMutations) {
  const DataGraph g = MakeFigure1Graph();
  ConcurrentSession session(g);
  const std::vector<PathExpression> queries = {
      Q(g, "//auction/bidder"), Q(g, "//person"), Q(g, "/site/auction")};

  // Readers check every answer against a ground-truth evaluation on the
  // *snapshot that answered* — pinned by QueryVersioned's version tag —
  // while the main thread applies mutation batches. Snapshots keep old
  // versions alive for in-flight readers, so answers are exact for the
  // version each reader saw, and epochs never run backwards.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> epoch_regressions{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_epoch = 0;
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const PathExpression& q = queries[i++ % queries.size()];
        ConcurrentSession::VersionedAnswer a = session.QueryVersioned(q);
        if (a.epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = a.epoch;
        // Re-acquire: only comparable if the version did not move between
        // the query and the check (it usually does not).
        std::shared_ptr<const DataGraph> snap = session.graph_snapshot();
        if (session.graph_version() == a.graph_version) {
          DataEvaluator oracle(*snap);
          if (oracle.Evaluate(q) != a.result.answer) mismatches.fetch_add(1);
        }
      }
    });
  }

  Rng rng(7);
  mutate::RandomBatchOptions gen;
  gen.num_ops = 2;
  uint64_t applied = 0;
  for (int step = 0; step < 30; ++step) {
    std::shared_ptr<const DataGraph> before = session.graph_snapshot();
    auto receipt =
        session.ApplyMutations(mutate::GenerateRandomBatch(rng, *before, gen));
    if (receipt.ok()) ++applied;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(applied, 10u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_EQ(session.graph_version(), applied);
}

TEST(ConcurrentMutationTest, StatsCarryEpochAndVersion) {
  const DataGraph g = MakeFigure3Graph();
  QueryServerOptions options;
  options.num_workers = 2;
  QueryServer server(g, options);
  auto receipt =
      server.session().ApplyMutations({mutate::Mutation::AppendLeaf(0, "y")});
  ASSERT_TRUE(receipt.ok());
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.graph_version, 1u);
  EXPECT_GE(stats.index_epoch, 1u);
  TableWriter table(ServerStatsHeaders());
  AppendServerStatsRow(stats, "mutated", /*qps=*/0.0, &table);
  EXPECT_EQ(table.num_rows(), 1u);
}

}  // namespace
}  // namespace mrx::server
