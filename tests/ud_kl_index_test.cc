#include <gtest/gtest.h>

#include <map>
#include <set>

#include "index/a_k_index.h"
#include "index/ud_kl_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

/// Oracle: the set of outgoing label paths of length ≤ l from `n`.
std::set<std::vector<LabelId>> OutgoingPaths(const DataGraph& g, NodeId n,
                                             int l) {
  std::set<std::vector<LabelId>> out;
  std::vector<std::pair<NodeId, std::vector<LabelId>>> frontier = {
      {n, {g.label(n)}}};
  out.insert({g.label(n)});
  for (int depth = 0; depth < l; ++depth) {
    std::vector<std::pair<NodeId, std::vector<LabelId>>> next;
    for (const auto& [node, labels] : frontier) {
      for (NodeId c : g.children(node)) {
        std::vector<LabelId> extended = labels;
        extended.push_back(g.label(c));
        out.insert(extended);
        next.emplace_back(c, std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(DownBisimulationTest, ZeroIsLabelPartition) {
  DataGraph g = MakeFigure1Graph();
  BisimulationPartition part = ComputeDownBisimulation(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(part.block_of[u] == part.block_of[v],
                g.label(u) == g.label(v));
    }
  }
}

TEST(DownBisimulationTest, SeparatesByChildren) {
  // Two b nodes: one with a c child, one without.
  DataGraph g = MakeGraph({"r", "b", "b", "c"}, {{0, 1}, {0, 2}, {1, 3}});
  BisimulationPartition part = ComputeDownBisimulation(g, 1);
  EXPECT_NE(part.block_of[1], part.block_of[2]);
  // The up-bisimulation keeps them together at any k.
  BisimulationPartition up = ComputeKBisimulation(g, 5);
  EXPECT_EQ(up.block_of[1], up.block_of[2]);
}

TEST(DownBisimulationTest, BlocksShareOutgoingPaths) {
  DataGraph g = RandomGraph(11, 40, 4, 20);
  for (int l = 0; l <= 3; ++l) {
    BisimulationPartition part = ComputeDownBisimulation(g, l);
    std::map<uint32_t, NodeId> representative;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      auto [it, inserted] = representative.emplace(part.block_of[n], n);
      if (!inserted) {
        EXPECT_EQ(OutgoingPaths(g, n, l), OutgoingPaths(g, it->second, l))
            << "l=" << l << " nodes " << n << "," << it->second;
      }
    }
  }
}

TEST(UdklIndexTest, RefinesAk) {
  DataGraph g = RandomGraph(13, 60, 4, 30);
  for (int k = 0; k <= 2; ++k) {
    AkIndex ak(g, k);
    UdklIndex ud(g, k, 2);
    EXPECT_GE(ud.graph().num_nodes(), ak.graph().num_nodes());
    // Every UD block is within one A(k) block.
    for (IndexNodeId v : ud.graph().AliveNodes()) {
      const auto& extent = ud.graph().node(v).extent;
      IndexNodeId ak_node = ak.graph().index_of(extent.front());
      for (NodeId o : extent) {
        EXPECT_EQ(ak.graph().index_of(o), ak_node);
      }
    }
  }
}

TEST(UdklIndexTest, ExtentsAreUpKBisimilar) {
  DataGraph g = RandomGraph(17, 50, 4, 25);
  UdklIndex ud(g, 2, 1);
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(ud.graph()));
}

TEST(UdklIndexTest, ExtentsShareOutgoingPaths) {
  DataGraph g = RandomGraph(19, 40, 3, 20);
  const int l = 2;
  UdklIndex ud(g, 1, l);
  for (IndexNodeId v : ud.graph().AliveNodes()) {
    const std::vector<NodeId> extent = ud.graph().node(v).extent.Materialize();
    for (size_t i = 1; i < extent.size(); ++i) {
      EXPECT_EQ(OutgoingPaths(g, extent[0], l),
                OutgoingPaths(g, extent[i], l));
    }
  }
}

TEST(UdklIndexTest, QueriesAreExact) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  UdklIndex ud(g, 2, 2);
  for (const char* text :
       {"//person", "//site/people/person", "//auction/seller/person",
        "//site/regions/*/item"}) {
    PathExpression p = Q(g, text);
    EXPECT_EQ(ud.Query(p).answer, eval.Evaluate(p)) << text;
  }
}

TEST(UdklIndexTest, PreciseUpToK) {
  DataGraph g = MakeFigure1Graph();
  UdklIndex ud(g, 3, 1);
  QueryResult r = ud.Query(Q(g, "//site/people/person"));
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
}

TEST(UdklIndexTest, DownwardChecksBecomeBlockUniform) {
  // The §4.1 connection: with down-uniform extents, "does this index
  // node's extent have the suffix outgoing?" has one answer per node —
  // no data-level re-checking needed for suffixes ≤ l. Verify on random
  // graphs: for every UD node and label pair (a, b), either every member
  // has an outgoing a/b path or none does.
  DataGraph g = RandomGraph(23, 40, 3, 20);
  UdklIndex ud(g, 1, 2);
  DataEvaluator eval(g);
  const SymbolTable& symbols = g.symbols();
  for (IndexNodeId v : ud.graph().AliveNodes()) {
    const auto& extent = ud.graph().node(v).extent;
    for (LabelId b = 0; b < symbols.size(); ++b) {
      // Outgoing path label(v)/b of length 1 ≤ l.
      PathExpression down({ud.graph().node(v).label, b}, false);
      size_t with = 0;
      for (NodeId o : extent) {
        for (NodeId c : g.children(o)) {
          if (g.label(c) == b) {
            ++with;
            break;
          }
        }
      }
      EXPECT_TRUE(with == 0 || with == extent.size())
          << "node " << v << " label " << symbols.Name(b);
    }
  }
}

}  // namespace
}  // namespace mrx
