#include <gtest/gtest.h>

#include "xml/graph_builder.h"

namespace mrx::xml {
namespace {

TEST(GraphBuilderTest, ContainmentBecomesRegularEdges) {
  auto g = BuildGraphFromXml("<site><people><person/></people></site>");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->label_name(g->root()), "site");
  EXPECT_EQ(g->num_reference_edges(), 0u);
}

TEST(GraphBuilderTest, IdrefBecomesReferenceEdge) {
  auto g = BuildGraphFromXml(
      "<site>"
      "<person id=\"p0\"/>"
      "<bidder person=\"p0\"/>"
      "</site>");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->num_reference_edges(), 1u);
  // bidder (node 2) points at person (node 1).
  auto kids = g->children(2);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0], 1u);
}

TEST(GraphBuilderTest, ForwardReferencesResolve) {
  auto g = BuildGraphFromXml(
      "<site>"
      "<watch open_auction=\"a0\"/>"
      "<open_auction id=\"a0\"/>"
      "</site>");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_reference_edges(), 1u);
}

TEST(GraphBuilderTest, IdrefsAttributeResolvesEachToken) {
  auto g = BuildGraphFromXml(
      "<r>"
      "<a id=\"x1\"/><a id=\"x2\"/>"
      "<see refs=\"x1 x2\"/>"
      "</r>");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_reference_edges(), 2u);
}

TEST(GraphBuilderTest, NonMatchingAttributeValuesAreIgnored) {
  auto g = BuildGraphFromXml("<r><a color=\"red\"/><b id=\"blue\"/></r>");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_reference_edges(), 0u);
}

TEST(GraphBuilderTest, DuplicateIdIsAnError) {
  auto g = BuildGraphFromXml("<r><a id=\"x\"/><b id=\"x\"/></r>");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kParseError);
}

TEST(GraphBuilderTest, ReferenceResolutionCanBeDisabled) {
  GraphBuildOptions options;
  options.resolve_references = false;
  auto g = BuildGraphFromXml(
      "<r><a id=\"x\"/><b ref=\"x\"/></r>", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_reference_edges(), 0u);
}

TEST(GraphBuilderTest, CustomIdAttributeName) {
  GraphBuildOptions options;
  options.id_attribute = "oid";
  auto g = BuildGraphFromXml(
      "<r><a oid=\"x\"/><b ref=\"x\"/></r>", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_reference_edges(), 1u);
}

TEST(GraphBuilderTest, AttributeNodesOptional) {
  GraphBuildOptions options;
  options.include_attribute_nodes = true;
  auto g = BuildGraphFromXml("<r><a color=\"red\"/></r>", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_TRUE(g->symbols().Lookup("@color").has_value());
}

TEST(GraphBuilderTest, TextNodesOptional) {
  GraphBuildOptions options;
  options.include_text_nodes = true;
  auto g = BuildGraphFromXml("<r>hello <b>world</b></r>", options);
  ASSERT_TRUE(g.ok());
  // r, b, and two #text nodes.
  EXPECT_EQ(g->num_nodes(), 4u);
  EXPECT_TRUE(g->symbols().Lookup("#text").has_value());
}

TEST(GraphBuilderTest, WhitespaceTextNeverBecomesNodes) {
  GraphBuildOptions options;
  options.include_text_nodes = true;
  auto g = BuildGraphFromXml("<r>  <b/>  </r>", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 2u);
}

TEST(GraphBuilderTest, SelfReferenceIsAllowed) {
  auto g = BuildGraphFromXml("<r><a id=\"x\" link=\"x\"/></r>");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_reference_edges(), 1u);
  // The self loop shows up in both adjacency directions.
  EXPECT_EQ(g->children(1)[0], 1u);
  EXPECT_EQ(g->parents(1).back(), 1u);
}

}  // namespace
}  // namespace mrx::xml
