// Tests for the descendant axis ("a//b") across the whole stack: data
// evaluation, validation, and every index. Such expressions are always
// answered through validation (no finite local similarity certifies an
// unbounded-length instance) but must always be exact.

#include <gtest/gtest.h>

#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(DescendantAxisTest, DataEvaluationBasics) {
  //      r
  //      |
  //      a
  //     / \
  //    x   b
  //    |
  //    b
  DataGraph g = MakeGraph({"r", "a", "x", "b", "b"},
                          {{0, 1}, {1, 2}, {2, 3}, {1, 4}});
  DataEvaluator eval(g);
  // a//b: both the direct child (4) and the one below x (3).
  EXPECT_EQ(eval.Evaluate(Q(g, "//a//b")), (std::vector<NodeId>{3, 4}));
  // a/b: only the direct child.
  EXPECT_EQ(eval.Evaluate(Q(g, "//a/b")), (std::vector<NodeId>{4}));
  // r//b: everything below the root labeled b.
  EXPECT_EQ(eval.Evaluate(Q(g, "//r//b")), (std::vector<NodeId>{3, 4}));
}

TEST(DescendantAxisTest, OneOrMoreEdges) {
  // a//a requires at least one edge: a node does not match itself unless
  // a cycle brings it back.
  DataGraph g = MakeGraph({"r", "a", "a"}, {{0, 1}, {1, 2}});
  DataEvaluator eval(g);
  EXPECT_EQ(eval.Evaluate(Q(g, "//a//a")), (std::vector<NodeId>{2}));

  DataGraph cyclic = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}, {2, 1}});
  DataEvaluator cyclic_eval(cyclic);
  // The cycle a -> b -> a makes node 1 its own descendant.
  EXPECT_EQ(cyclic_eval.Evaluate(Q(cyclic, "//a//a")),
            (std::vector<NodeId>{1}));
}

TEST(DescendantAxisTest, MixedAxesAndWildcard) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  // Every item anywhere below site, vs only region items via the child
  // chain.
  PathExpression deep = Q(g, "//site//item");
  std::vector<NodeId> items = eval.Evaluate(deep);
  // items 12,13,14 under regions; 19,20 under auctions.
  EXPECT_EQ(items, (std::vector<NodeId>{12, 13, 14, 19, 20}));
  PathExpression mixed = Q(g, "//site//*/person");
  EXPECT_EQ(eval.Evaluate(mixed), (std::vector<NodeId>{7, 8, 9}));
}

TEST(DescendantAxisTest, HasIncomingPathAgrees) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  for (const char* text :
       {"//site//item", "//root//person", "//auctions//person",
        "//regions//item", "//a//missing"}) {
    PathExpression p = Q(g, text);
    std::vector<NodeId> expected = eval.Evaluate(p);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(eval.HasIncomingPath(n, p),
                std::binary_search(expected.begin(), expected.end(), n))
          << text << " node " << n;
    }
  }
}

TEST(DescendantAxisTest, AnchoredDescendant) {
  DataGraph g = MakeGraph({"r", "x", "r", "b", "b"},
                          {{0, 1}, {1, 3}, {0, 2}, {2, 4}});
  DataEvaluator eval(g);
  // /r//b from the root reaches both; the inner r only reaches 4.
  EXPECT_EQ(eval.Evaluate(Q(g, "/r//b")), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(eval.Evaluate(Q(g, "//r//b")), (std::vector<NodeId>{3, 4}));
}

TEST(DescendantAxisTest, AllIndexesAnswerExactly) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  const char* queries[] = {"//site//item", "//root//person",
                           "//auctions//person", "//regions//item",
                           "//site//bidder/person"};

  AkIndex a2(g, 2);
  OneIndex one(g);
  DkIndex dkc = DkIndex::Construct(g, {Q(g, "//site/people/person")});
  MkIndex mk(g);
  mk.Refine(Q(g, "//site/people/person"));
  MStarIndex mstar(g);
  mstar.Refine(Q(g, "//site/people/person"));

  for (const char* text : queries) {
    PathExpression p = Q(g, text);
    std::vector<NodeId> expected = eval.Evaluate(p);
    EXPECT_EQ(a2.Query(p).answer, expected) << text;
    EXPECT_EQ(one.Query(p).answer, expected) << text;
    EXPECT_EQ(dkc.Query(p).answer, expected) << text;
    EXPECT_EQ(mk.Query(p).answer, expected) << text;
    EXPECT_EQ(mstar.QueryNaive(p).answer, expected) << text;
    EXPECT_EQ(mstar.QueryTopDown(p).answer, expected) << text;
    EXPECT_EQ(mstar.QueryBottomUp(p).answer, expected) << text;
    EXPECT_EQ(mstar.QueryHybrid(p).answer, expected) << text;
    // Never claimed precise, even by the 1-index.
    EXPECT_FALSE(one.Query(p).precise) << text;
  }
}

TEST(DescendantAxisTest, RefineIsANoOpForDescendantFups) {
  DataGraph g = MakeFigure1Graph();
  MkIndex mk(g);
  MStarIndex mstar(g);
  DkIndex dk(g);
  size_t mk_nodes = mk.graph().num_nodes();
  PathExpression p = Q(g, "//site//person");
  mk.Refine(p);
  mstar.Refine(p);
  dk.Promote(p);
  EXPECT_EQ(mk.graph().num_nodes(), mk_nodes);
  EXPECT_EQ(mstar.num_components(), 1u);
  EXPECT_EQ(dk.graph().num_nodes(), mk_nodes);
}

TEST(DescendantAxisTest, RandomGraphSweep) {
  for (uint64_t seed : {501, 502, 503}) {
    DataGraph g = RandomGraph(seed, 50, 4, 25);
    DataEvaluator eval(g);
    const SymbolTable& symbols = g.symbols();
    MStarIndex mstar(g);
    // Refine some plain FUPs so components exist.
    int refined = 0;
    for (LabelId a = 0; a < symbols.size() && refined < 2; ++a) {
      for (LabelId b = 0; b < symbols.size() && refined < 2; ++b) {
        PathExpression p({a, b}, false);
        if (!eval.Evaluate(p).empty()) {
          mstar.Refine(p);
          ++refined;
        }
      }
    }
    for (LabelId a = 0; a < symbols.size(); ++a) {
      for (LabelId b = 0; b < symbols.size(); ++b) {
        PathExpression p({a, b}, {0, 1}, false);  // //a//b
        std::vector<NodeId> expected = eval.Evaluate(p);
        ASSERT_EQ(mstar.QueryNaive(p).answer, expected);
        ASSERT_EQ(mstar.QueryTopDown(p).answer, expected);
      }
    }
  }
}

TEST(DescendantAxisTest, SubpathClearsLeadingAxis) {
  SymbolTable symbols;
  symbols.Intern("a");
  symbols.Intern("b");
  symbols.Intern("c");
  auto p = PathExpression::Parse("//a//b//c", symbols);
  ASSERT_TRUE(p.ok());
  PathExpression sub = p->Subpath(1, 2);  // b//c
  EXPECT_FALSE(sub.DescendantStep(0));
  EXPECT_TRUE(sub.DescendantStep(1));
  EXPECT_EQ(sub.ToString(symbols), "//b//c");
}

}  // namespace
}  // namespace mrx
