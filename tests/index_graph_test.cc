#include <gtest/gtest.h>

#include "index/bisimulation.h"
#include "index/index_graph.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

TEST(IndexGraphTest, LabelPartitionShape) {
  DataGraph g = MakeFigure3Graph();  // labels r,a,c,d,b over 10 nodes
  IndexGraph ig = IndexGraph::LabelPartition(g);
  EXPECT_EQ(ig.num_nodes(), 5u);
  EXPECT_TRUE(ig.CheckConsistency().ok());
  // The b node holds all six b's with k = 0.
  IndexNodeId b = ig.index_of(4);
  EXPECT_EQ(ig.node(b).extent.size(), 6u);
  EXPECT_EQ(ig.node(b).k, 0);
  // Edges r->a, r->c, r->d, a->b, c->b, d->b.
  EXPECT_EQ(ig.num_edges(), 6u);
}

TEST(IndexGraphTest, FromPartitionRecordsK) {
  DataGraph g = MakeGraph({"r", "a", "a"}, {{0, 1}, {0, 2}});
  std::vector<uint32_t> blocks = {0, 1, 1};
  std::vector<int32_t> k = {0, 3};
  IndexGraph ig = IndexGraph::FromPartition(g, blocks, 2, k);
  EXPECT_EQ(ig.num_nodes(), 2u);
  EXPECT_EQ(ig.node(ig.index_of(1)).k, 3);
  EXPECT_TRUE(ig.CheckConsistency().ok());
}

TEST(IndexGraphTest, ReplaceNodeSplitsAndRewires) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  IndexNodeId b = ig.index_of(4);
  std::vector<IndexGraph::Part> parts;
  parts.push_back({{4}, 2});
  parts.push_back({{5, 6, 7, 8, 9}, 0});
  auto ids = ig.ReplaceNode(b, std::move(parts));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_FALSE(ig.alive(b));
  EXPECT_EQ(ig.num_nodes(), 6u);
  EXPECT_TRUE(ig.CheckConsistency().ok()) << ig.CheckConsistency();
  // {4} is a child of the a node only; the rest has c and d parents.
  EXPECT_EQ(ig.index_of(4), ids[0]);
  EXPECT_EQ(ig.node(ids[0]).parents.size(), 1u);
  EXPECT_EQ(ig.node(ids[0]).parents[0], ig.index_of(1));
  EXPECT_EQ(ig.node(ids[1]).parents.size(), 2u);
  EXPECT_EQ(ig.node(ids[0]).k, 2);
  EXPECT_EQ(ig.node(ids[1]).k, 0);
}

TEST(IndexGraphTest, ReplaceNodeWithSelfLoop) {
  DataGraph g = MakeGraph({"r", "a", "a"}, {{0, 1}, {1, 2}, {2, 1}});
  IndexGraph ig = IndexGraph::LabelPartition(g);
  IndexNodeId a = ig.index_of(1);
  // The a node has a self loop (a1 -> a2, a2 -> a1).
  EXPECT_TRUE(std::binary_search(ig.node(a).children.begin(),
                                 ig.node(a).children.end(), a));
  auto ids = ig.ReplaceNode(a, {{{1}, 1}, {{2}, 1}});
  EXPECT_TRUE(ig.CheckConsistency().ok()) << ig.CheckConsistency();
  // Now the two singleton a nodes point at each other.
  EXPECT_EQ(ig.node(ids[0]).children, (std::vector<IndexNodeId>{ids[1]}));
  EXPECT_EQ(ig.node(ids[1]).children, (std::vector<IndexNodeId>{ids[0]}));
}

TEST(IndexGraphTest, ReplaceNodeSinglePartRaisesK) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  IndexGraph ig = IndexGraph::LabelPartition(g);
  IndexNodeId a = ig.index_of(1);
  auto ids = ig.ReplaceNode(a, {{{1}, 5}});
  EXPECT_EQ(ig.num_nodes(), 2u);
  EXPECT_EQ(ig.node(ids[0]).k, 5);
  EXPECT_TRUE(ig.CheckConsistency().ok());
}

TEST(IndexGraphTest, NumEdgesCountsAliveOnly) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  size_t before = ig.num_edges();
  IndexNodeId b = ig.index_of(4);
  ig.ReplaceNode(b, {{{4}, 1}, {{5, 6, 7, 8, 9}, 0}});
  // a->b4; c,d -> rest; r->a,c,d: total 6 edges again.
  EXPECT_EQ(before, 6u);
  EXPECT_EQ(ig.num_edges(), 6u);
}

TEST(IndexGraphTest, SuccAndPred) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  EXPECT_EQ(ig.Succ(std::vector<NodeId>{0}), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(ig.Succ(std::vector<NodeId>{2, 3}),
            (std::vector<NodeId>{5, 6, 7, 8, 9}));
  EXPECT_EQ(ig.Pred(std::vector<NodeId>{4}), (std::vector<NodeId>{1}));
  EXPECT_EQ(ig.Pred(std::vector<NodeId>{5, 9}), (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(ig.Succ(std::vector<NodeId>{}).empty());
  EXPECT_TRUE(ig.Pred(std::vector<NodeId>{}).empty());
  // The Extent overloads agree with the vector kernels.
  EXPECT_EQ(ig.Succ(Extent(std::vector<NodeId>{2, 3})),
            (std::vector<NodeId>{5, 6, 7, 8, 9}));
  EXPECT_EQ(ig.Pred(Extent(std::vector<NodeId>{5, 9})),
            (std::vector<NodeId>{2, 3}));
}

TEST(IndexGraphTest, AliveNodesSkipsTombstones) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  IndexNodeId b = ig.index_of(4);
  ig.ReplaceNode(b, {{{4}, 1}, {{5, 6, 7, 8, 9}, 0}});
  auto alive = ig.AliveNodes();
  EXPECT_EQ(alive.size(), ig.num_nodes());
  for (IndexNodeId v : alive) EXPECT_TRUE(ig.alive(v));
  EXPECT_EQ(std::count(alive.begin(), alive.end(), b), 0);
}

TEST(IndexGraphTest, CopyIsDeep) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph a = IndexGraph::LabelPartition(g);
  IndexGraph b = a;
  b.ReplaceNode(b.index_of(4), {{{4}, 1}, {{5, 6, 7, 8, 9}, 0}});
  EXPECT_EQ(a.num_nodes(), 5u);
  EXPECT_EQ(b.num_nodes(), 6u);
  EXPECT_TRUE(a.CheckConsistency().ok());
  EXPECT_TRUE(b.CheckConsistency().ok());
}

TEST(IndexGraphTest, RandomSplitsKeepConsistency) {
  DataGraph g = RandomGraph(77, 80, 6, 40);
  IndexGraph ig = IndexGraph::LabelPartition(g);
  Rng rng(5);
  for (int step = 0; step < 30; ++step) {
    auto alive = ig.AliveNodes();
    IndexNodeId v = alive[rng.Below(alive.size())];
    const auto& extent = ig.node(v).extent;
    if (extent.size() < 2) continue;
    // Split off a random nonempty strict subset.
    std::vector<NodeId> left, right;
    for (NodeId o : extent) {
      (rng.Chance(0.5) ? left : right).push_back(o);
    }
    if (left.empty() || right.empty()) continue;
    ig.ReplaceNode(v, {{left, 1}, {right, 0}});
    ASSERT_TRUE(ig.CheckConsistency().ok()) << ig.CheckConsistency();
  }
}

TEST(IndexGraphTest, RefinementStatsCountSplits) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  EXPECT_EQ(ig.refinement_stats().splits, 0u);
  IndexNodeId b = ig.index_of(4);
  ig.ReplaceNode(b, {{{4}, 1}, {{5, 6, 7, 8, 9}, 0}});
  EXPECT_EQ(ig.refinement_stats().splits, 1u);
  EXPECT_EQ(ig.refinement_stats().nodes_created, 1u);
  EXPECT_EQ(ig.refinement_stats().extent_moves, 6u);
  // A single-part replace (k relabel) is not a split.
  ig.ReplaceNode(ig.index_of(4), {{{4}, 2}});
  EXPECT_EQ(ig.refinement_stats().splits, 1u);
}

TEST(IndexGraphTest, DebugStringListsAliveNodes) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  IndexGraph ig = IndexGraph::LabelPartition(g);
  std::string dump = ig.DebugString();
  EXPECT_NE(dump.find("[r,k=0]"), std::string::npos);
  EXPECT_NE(dump.find("[a,k=0]"), std::string::npos);
}

}  // namespace
}  // namespace mrx
