#include <gtest/gtest.h>

#include "harness/datasets.h"
#include "index/strategy_chooser.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(StrategyChooserTest, AnchoredAlwaysTopDown) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  StrategyChooser chooser(index);
  EXPECT_EQ(chooser.Choose(Q(g, "/r/a/b")), MStarQueryStrategy::kTopDown);
}

TEST(StrategyChooserTest, DescendantAxisAlwaysNaive) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  StrategyChooser chooser(index);
  EXPECT_EQ(chooser.Choose(Q(g, "//r//b")), MStarQueryStrategy::kNaive);
}

TEST(StrategyChooserTest, EstimatesAreFiniteAndOrdered) {
  DataGraph g = MakeFigure1Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//site/auctions/auction/seller/person"));
  StrategyChooser chooser(index);
  PathExpression p = Q(g, "//site/auctions/auction/seller/person");
  for (MStarQueryStrategy s :
       {MStarQueryStrategy::kNaive, MStarQueryStrategy::kTopDown,
        MStarQueryStrategy::kBottomUp, MStarQueryStrategy::kHybrid}) {
    EXPECT_GE(chooser.EstimateCost(p, s), 0.0);
  }
  // Bottom-up's downward-check penalty makes it the most expensive
  // estimate for a long path whose labels appear throughout.
  EXPECT_GT(chooser.EstimateCost(p, MStarQueryStrategy::kBottomUp),
            chooser.EstimateCost(p, MStarQueryStrategy::kTopDown));
}

TEST(StrategyChooserTest, AutoAnswersAreExact) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(Q(g, "//site/people/person"));
  for (const char* text :
       {"//person", "//site/people/person", "//auction/seller/person",
        "//site//item", "/root/site", "//site/regions/*/item"}) {
    PathExpression p = Q(g, text);
    EXPECT_EQ(StrategyChooser::QueryAuto(index, p).answer, eval.Evaluate(p))
        << text;
  }
}

TEST(StrategyChooserTest, AutoIsCompetitiveOnGeneratedWorkload) {
  auto g = harness::BuildXMarkGraph(0.05);
  ASSERT_TRUE(g.ok());
  LabelPathEnumerationOptions eo;
  eo.max_length = 9;
  auto paths = EnumerateLabelPaths(*g, eo);
  WorkloadOptions wo;
  wo.num_queries = 120;
  wo.max_query_length = 9;
  auto workload = GenerateWorkload(paths, wo);

  MStarIndex index(*g);
  for (const auto& q : workload) index.Refine(q);
  StrategyChooser chooser(index);

  uint64_t auto_cost = 0;
  uint64_t best_cost = 0;
  uint64_t topdown_cost = 0;
  for (const auto& q : workload) {
    uint64_t naive = index.QueryNaive(q).stats.total();
    uint64_t topdown = index.QueryTopDown(q).stats.total();
    uint64_t bottomup = index.QueryBottomUp(q).stats.total();
    uint64_t hybrid = index.QueryHybrid(q).stats.total();
    best_cost += std::min({naive, topdown, bottomup, hybrid});
    topdown_cost += topdown;
    switch (chooser.Choose(q)) {
      case MStarQueryStrategy::kNaive:
        auto_cost += naive;
        break;
      case MStarQueryStrategy::kTopDown:
        auto_cost += topdown;
        break;
      case MStarQueryStrategy::kBottomUp:
        auto_cost += bottomup;
        break;
      case MStarQueryStrategy::kHybrid:
        auto_cost += hybrid;
        break;
    }
  }
  // The chooser must not be a disaster: within 2x of the per-query best,
  // and no worse than always-top-down by more than 25%.
  EXPECT_LE(auto_cost, best_cost * 2);
  EXPECT_LE(auto_cost, topdown_cost + topdown_cost / 4);
}

}  // namespace
}  // namespace mrx
