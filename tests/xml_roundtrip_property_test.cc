#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "check/graph_spec.h"
#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "xml/graph_builder.h"
#include "xml/writer.h"

namespace mrx {
namespace {

// The checker's adversarial schema shape: recursion, reused names, and
// ID/IDREF links so generated instances carry reference edges.
constexpr const char* kDtd = R"(
<!ELEMENT db (rec+)>
<!ELEMENT rec (name, val*, link*)>
<!ATTLIST rec id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT val (name?, val*, link?)>
<!ELEMENT link EMPTY>
<!ATTLIST link ref IDREF #REQUIRED>
)";

using EdgeTuple = std::tuple<uint32_t, uint32_t, bool>;

std::vector<EdgeTuple> SortedEdges(const check::GraphSpec& spec) {
  std::vector<EdgeTuple> edges;
  edges.reserve(spec.edges.size());
  for (const check::GraphSpec::Edge& e : spec.edges) {
    edges.emplace_back(e.from, e.to, e.reference);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Node-id-preserving isomorphism: the writer emits nodes in id order and
/// the builder assigns ids in document order, so a faithful round trip
/// reproduces the graph *exactly* — same ids, labels, root, and edge
/// multiset (edge order within a node may differ between parses).
void ExpectIsomorphic(const DataGraph& a, const DataGraph& b,
                      uint64_t seed) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "seed " << seed;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << "seed " << seed;
  EXPECT_EQ(a.root(), b.root()) << "seed " << seed;
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    ASSERT_EQ(a.label_name(n), b.label_name(n))
        << "seed " << seed << " node " << n;
  }
  check::GraphSpec sa = check::GraphSpec::FromDataGraph(a);
  check::GraphSpec sb = check::GraphSpec::FromDataGraph(b);
  EXPECT_EQ(SortedEdges(sa), SortedEdges(sb)) << "seed " << seed;
}

TEST(XmlRoundTripPropertyTest, TwoHundredSeededDtdDocuments) {
  Result<datagen::Dtd> dtd = datagen::Dtd::Parse(kDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();

  size_t with_references = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    datagen::DtdGeneratorOptions options;
    options.seed = seed;
    options.max_elements = 120;
    options.star_mean = 1.5;
    options.max_depth = 10;
    Result<std::string> doc = datagen::GenerateDocument(*dtd, options);
    ASSERT_TRUE(doc.ok()) << "seed " << seed << ": " << doc.status();

    Result<DataGraph> first = xml::BuildGraphFromXml(*doc);
    ASSERT_TRUE(first.ok()) << "seed " << seed << ": " << first.status();
    if (first->num_reference_edges() > 0) ++with_references;

    Result<std::string> rewritten = xml::WriteGraphAsXml(*first);
    ASSERT_TRUE(rewritten.ok()) << "seed " << seed << ": "
                                << rewritten.status();
    Result<DataGraph> second = xml::BuildGraphFromXml(*rewritten);
    ASSERT_TRUE(second.ok()) << "seed " << seed << ": " << second.status();
    ExpectIsomorphic(*first, *second, seed);

    // And the rewritten form is a fixpoint: writing again is stable.
    Result<std::string> third = xml::WriteGraphAsXml(*second);
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(*rewritten, *third) << "seed " << seed;
  }
  // The property is only interesting if reference edges actually occur.
  EXPECT_GT(with_references, 50u);
}

}  // namespace
}  // namespace mrx
