#ifndef MRX_TESTS_JSON_CHECK_H_
#define MRX_TESTS_JSON_CHECK_H_

// A minimal strict JSON parser for round-trip validation of the files the
// observability layer emits (metrics.jsonl, trace.jsonl, BENCH_server.json).
// Test-only: it builds a small DOM so tests can assert on fields, and it
// rejects anything the grammar does not allow (trailing garbage, bare
// values where the emitters promise objects, unescaped control chars).

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mrx::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses `text` as exactly one JSON value (plus surrounding whitespace);
  /// returns nullopt on any syntax error or trailing garbage.
  std::optional<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Unescaped.
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          // Tests only need validation, not transcoding: keep the escape.
          out->append("\\u").append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number_value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline std::optional<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace mrx::testing

#endif  // MRX_TESTS_JSON_CHECK_H_
