// Exhaustive verification over *all* small graphs: every rooted digraph
// with up to 4 nodes over a 2-label alphabet (node 0 = root, every
// non-root node gets a tree parent, all other edges enumerated by
// bitmask). For each graph, every index must answer every 1- and 2-step
// query exactly, and M(k)/M*(k) must keep their invariants after refining
// every length-2 FUP. This complements the random sweeps with a complete
// search of the tiny-graph space (where most partition-refinement corner
// cases — cycles, self-loops, multi-parents, sibling collisions — occur).

#include <gtest/gtest.h>

#include "index/a_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

/// Builds the graph identified by (n, labels_mask, tree_code, extra_mask):
/// labels_mask bit i = label of node i; tree_code encodes each non-root
/// node's tree parent; extra_mask enumerates all possible extra edges.
DataGraph BuildIndexed(size_t n, uint32_t labels_mask, uint32_t tree_code,
                       uint32_t extra_mask) {
  DataGraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddNode((labels_mask >> i) & 1 ? "y" : "x");
  }
  // Tree parents: node i (>=1) gets parent (tree_code digit in base i).
  uint32_t code = tree_code;
  for (size_t i = 1; i < n; ++i) {
    b.AddEdge(static_cast<NodeId>(code % i), static_cast<NodeId>(i));
    code /= static_cast<uint32_t>(i);
  }
  // Extra edges: enumerate all ordered pairs (u, v).
  uint32_t bit = 0;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v, ++bit) {
      if ((extra_mask >> bit) & 1) {
        b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  }
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

/// All length-0..2 floating expressions over the 2-label alphabet.
std::vector<PathExpression> AllQueries(const DataGraph& g) {
  std::vector<PathExpression> out;
  const size_t L = g.symbols().size();
  for (LabelId a = 0; a < L; ++a) {
    out.emplace_back(std::vector<LabelId>{a}, false);
    for (LabelId b = 0; b < L; ++b) {
      out.emplace_back(std::vector<LabelId>{a, b}, false);
      for (LabelId c = 0; c < L; ++c) {
        out.emplace_back(std::vector<LabelId>{a, b, c}, false);
      }
    }
  }
  return out;
}

class ExhaustiveSmallGraphTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExhaustiveSmallGraphTest, EveryIndexExactOnEveryGraph) {
  const size_t n = GetParam();
  // tree_code ranges over prod(i for i in 1..n-1) = (n-1)!.
  uint32_t tree_codes = 1;
  for (uint32_t i = 1; i < n; ++i) tree_codes *= i;
  const uint32_t extra_bits = static_cast<uint32_t>(n * n);
  // For n == 4 enumerating all 2^16 extra masks is too slow with the full
  // index battery; sample a deterministic stride instead.
  const uint32_t extra_limit = 1u << extra_bits;
  const uint32_t stride = n < 4 ? 1 : 613;  // Prime stride for n = 4.

  size_t graphs_checked = 0;
  for (uint32_t labels_mask = 0; labels_mask < (1u << n); ++labels_mask) {
    for (uint32_t tree_code = 0; tree_code < tree_codes; ++tree_code) {
      for (uint32_t extra = 0; extra < extra_limit; extra += stride) {
        DataGraph g =
            BuildIndexed(n, labels_mask, tree_code, extra);
        DataEvaluator eval(g);
        auto queries = AllQueries(g);

        AkIndex a1(g, 1);
        MkIndex mk(g);
        MStarIndex mstar(g);
        for (const auto& q : queries) {
          if (q.length() == 2) {
            mk.Refine(q);
            mstar.Refine(q);
          }
        }
        ASSERT_TRUE(mk.graph().CheckConsistency().ok())
            << "n=" << n << " labels=" << labels_mask
            << " tree=" << tree_code << " extra=" << extra;
        ASSERT_TRUE(mstar.CheckProperties().ok())
            << "n=" << n << " labels=" << labels_mask
            << " tree=" << tree_code << " extra=" << extra;
        ASSERT_TRUE(mrx::testing::ExtentsAreKBisimilar(mk.graph()));

        for (const auto& q : queries) {
          std::vector<NodeId> truth = eval.Evaluate(q);
          ASSERT_EQ(a1.Query(q).answer, truth);
          ASSERT_EQ(mk.Query(q).answer, truth);
          ASSERT_EQ(mstar.QueryTopDown(q).answer, truth);
          if (q.length() == 2) {
            ASSERT_TRUE(mk.Query(q).precise)
                << "labels=" << labels_mask << " tree=" << tree_code
                << " extra=" << extra << " q=" << q.ToString(g.symbols());
          }
        }
        ++graphs_checked;
      }
    }
  }
  EXPECT_GT(graphs_checked, 50u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveSmallGraphTest,
                         ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mrx
