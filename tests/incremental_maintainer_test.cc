#include "mutate/incremental_maintainer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/bisimulation.h"
#include "index/d_k_index.h"
#include "index/m_star_index.h"
#include "mutate/random_batch.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace mrx::mutate {
namespace {

using ::mrx::testing::MakeFigure1Graph;
using ::mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

std::vector<uint32_t> Canon(const BisimulationPartition& p) {
  return CanonicalBlockIds(p.block_of, p.num_blocks);
}

/// The exact spec sequence MStarIndex::BuildStaticHierarchy derives —
/// replicated here so the test pins the maintainer's export to the static
/// build's numbering, byte for byte.
std::vector<MStarComponentSpec> StaticSpecs(const DataGraph& g, int k_max) {
  std::vector<MStarComponentSpec> specs;
  std::vector<uint32_t> prev_block_of;
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  for (int i = 0; i <= k_max; ++i) {
    if (i > 0) RefineBisimulationRound(g, &part);
    MStarComponentSpec spec;
    std::vector<std::vector<NodeId>> staged(part.num_blocks);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      staged[part.block_of[n]].push_back(n);
    }
    spec.ks.assign(part.num_blocks, i);
    spec.supernodes.assign(part.num_blocks, 0);
    spec.extents.reserve(part.num_blocks);
    for (uint32_t b = 0; b < part.num_blocks; ++b) {
      if (i > 0) spec.supernodes[b] = prev_block_of[staged[b].front()];
      spec.extents.push_back(Extent::FromSorted(std::move(staged[b])));
    }
    prev_block_of = part.block_of;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectSpecsEqual(const std::vector<MStarComponentSpec>& got,
                      const std::vector<MStarComponentSpec>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].extents, want[i].extents) << "component " << i;
    EXPECT_EQ(got[i].ks, want[i].ks) << "component " << i;
    EXPECT_EQ(got[i].supernodes, want[i].supernodes) << "component " << i;
  }
}

/// Checks every maintained A level against a from-scratch rebuild and the
/// static-spec export against BuildStaticHierarchy's numbering.
void ExpectExact(const IncrementalMaintainer& m) {
  const DataGraph& g = m.graph();
  for (int k = 0; k <= m.options().k_max; ++k) {
    const BisimulationPartition oracle = ComputeKBisimulation(g, k);
    const BisimulationPartition got = m.AkPartition(k);
    ASSERT_EQ(got.num_blocks, oracle.num_blocks) << "A(" << k << ")";
    ASSERT_EQ(got.block_of, Canon(oracle)) << "A(" << k << ")";
  }
  ExpectSpecsEqual(m.ExportStaticSpecs(), StaticSpecs(g, m.options().k_max));
}

void ExpectDkExact(const IncrementalMaintainer& m) {
  const DataGraph& g = m.graph();
  const std::vector<int32_t> kreq =
      ComputeDkLabelRequirements(g, m.options().dk_fups);
  const BisimulationPartition oracle = ComputeDkConstructPartition(g, kreq);
  const BisimulationPartition got = m.DkPartition();
  ASSERT_EQ(got.num_blocks, oracle.num_blocks);
  ASSERT_EQ(got.block_of, Canon(oracle));
}

TEST(IncrementalMaintainerTest, SeedMatchesFromScratch) {
  const DataGraph g = MakeFigure1Graph();
  IncrementalMaintainer m(g);
  EXPECT_EQ(m.version(), 0u);
  ExpectExact(m);
  auto index = m.BuildMStar();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_components(), 4u);
}

TEST(IncrementalMaintainerTest, SingleAppendStaysExact) {
  const DataGraph g = MakeFigure3Graph();
  IncrementalMaintainer m(g);
  auto receipt = m.Apply({Mutation::AppendLeaf(2, "b")});
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->version, 1u);
  ASSERT_EQ(receipt->new_nodes.size(), 1u);
  EXPECT_EQ(m.graph().label_name(receipt->new_nodes[0]), "b");
  ExpectExact(m);
}

TEST(IncrementalMaintainerTest, DeleteStaysExact) {
  const DataGraph g = MakeFigure1Graph();
  IncrementalMaintainer m(g);
  // Node 10 is an auction with seller/bidder/item children.
  auto receipt = m.Apply({Mutation::Delete(10)});
  ASSERT_TRUE(receipt.ok());
  EXPECT_GT(receipt->nodes_deleted, 0u);
  ExpectExact(m);
}

TEST(IncrementalMaintainerTest, RefCycleStaysExact) {
  const DataGraph g = MakeFigure3Graph();
  IncrementalMaintainer m(g);
  // A reference cycle between the two c-children, plus a back-reference
  // closing a cycle through a regular path.
  auto receipt = m.Apply({Mutation::AddRef(5, 6), Mutation::AddRef(6, 5),
                          Mutation::AddRef(4, 0)});
  ASSERT_TRUE(receipt.ok());
  ExpectExact(m);
  auto receipt2 = m.Apply({Mutation::RemoveRef(6, 5)});
  ASSERT_TRUE(receipt2.ok());
  ExpectExact(m);
}

TEST(IncrementalMaintainerTest, RandomTraceStaysExact) {
  const DataGraph g = MakeFigure1Graph();
  IncrementalMaintainer m(g);
  Rng rng(20260807);
  RandomBatchOptions gen;
  gen.num_ops = 3;
  size_t applied = 0;
  for (int step = 0; step < 40; ++step) {
    const MutationBatch batch = GenerateRandomBatch(rng, m.graph(), gen);
    auto receipt = m.Apply(batch);
    if (!receipt.ok()) continue;  // Ops may interact; a reject is a no-op.
    ++applied;
    ExpectExact(m);
  }
  EXPECT_GT(applied, 20u);
  EXPECT_GT(m.stats().incremental_rounds, 0u);
}

TEST(IncrementalMaintainerTest, FallbackPathStaysExact) {
  const DataGraph g = MakeFigure1Graph();
  MaintainerOptions options;
  options.rebuild_threshold = 0.0;  // Every dirty level takes a full round.
  IncrementalMaintainer m(g, options);
  Rng rng(7);
  RandomBatchOptions gen;
  gen.num_ops = 2;
  for (int step = 0; step < 15; ++step) {
    auto receipt = m.Apply(GenerateRandomBatch(rng, m.graph(), gen));
    if (!receipt.ok()) continue;
    ExpectExact(m);
  }
  EXPECT_GT(m.stats().full_rounds, 0u);
  EXPECT_EQ(m.stats().incremental_rounds, 0u);
}

TEST(IncrementalMaintainerTest, NoFallbackAboveUnitThreshold) {
  const DataGraph g = MakeFigure1Graph();
  MaintainerOptions options;
  options.rebuild_threshold = 2.0;  // Dirty can never exceed 2x the nodes.
  IncrementalMaintainer m(g, options);
  Rng rng(11);
  for (int step = 0; step < 15; ++step) {
    auto receipt = m.Apply(GenerateRandomBatch(rng, m.graph(), {}));
    if (!receipt.ok()) continue;
    ExpectExact(m);
  }
  EXPECT_EQ(m.stats().full_rounds, 0u);
  EXPECT_GT(m.stats().incremental_rounds, 0u);
}

TEST(IncrementalMaintainerTest, DkChainStaysExact) {
  const DataGraph g = MakeFigure3Graph();
  MaintainerOptions options;
  options.maintain_dk = true;
  options.dk_fups = {Q(g, "/r/a/b")};
  IncrementalMaintainer m(g, options);
  ExpectDkExact(m);
  Rng rng(99);
  RandomBatchOptions gen;
  gen.num_ops = 2;
  gen.fresh_label_chance = 0.3;
  for (int step = 0; step < 25; ++step) {
    auto receipt = m.Apply(GenerateRandomBatch(rng, m.graph(), gen));
    if (!receipt.ok()) continue;
    ExpectExact(m);
    ExpectDkExact(m);
  }
}

TEST(IncrementalMaintainerTest, DkRebuildsWhenRequirementsMove) {
  const DataGraph g = MakeFigure3Graph();
  MaintainerOptions options;
  options.maintain_dk = true;
  options.dk_fups = {Q(g, "/r/a/b")};
  IncrementalMaintainer m(g, options);
  // Appending an "a" under a "c" adds the label edge c->a, but c's
  // requirement (1, from the existing c->b edges) already covers it: no
  // schedule movement, no rebuild.
  auto receipt = m.Apply({Mutation::AppendLeaf(2, "a")});
  ASSERT_TRUE(receipt.ok());
  ExpectDkExact(m);
  EXPECT_EQ(m.stats().dk_rebuilds, 0u);
  // Appending a "b" directly under the root adds the label edge r->b, so
  // kreq[r] must rise from 0 to 1 (parent req >= child req - 1): an
  // existing label's freeze schedule moves, which must force a D rebuild.
  auto receipt2 = m.Apply({Mutation::AppendLeaf(0, "b")});
  ASSERT_TRUE(receipt2.ok());
  ExpectDkExact(m);
  EXPECT_GE(m.stats().dk_rebuilds, 1u);
}

TEST(IncrementalMaintainerTest, RejectedBatchLeavesEverythingUntouched) {
  const DataGraph g = MakeFigure3Graph();
  IncrementalMaintainer m(g);
  const BisimulationPartition before = m.AkPartition(3);
  auto receipt = m.Apply({Mutation::AppendLeaf(1, "x"), Mutation::Delete(0)});
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(m.version(), 0u);
  EXPECT_EQ(m.graph().num_nodes(), g.num_nodes());
  const BisimulationPartition after = m.AkPartition(3);
  EXPECT_EQ(after.block_of, before.block_of);
  ExpectExact(m);
}

TEST(IncrementalMaintainerTest, EmptyBatchIsANoOp) {
  const DataGraph g = MakeFigure3Graph();
  IncrementalMaintainer m(g);
  auto receipt = m.Apply({});
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->version, 0u);
  EXPECT_EQ(m.version(), 0u);
}

TEST(IncrementalMaintainerTest, MStarBuildsAfterMutations) {
  const DataGraph g = MakeFigure1Graph();
  IncrementalMaintainer m(g);
  Rng rng(5);
  for (int step = 0; step < 10; ++step) {
    auto receipt = m.Apply(GenerateRandomBatch(rng, m.graph(), {}));
    (void)receipt;
  }
  auto index = m.BuildMStar();
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  // FromComponents re-verifies Properties 1-5; equal specs + the same
  // constructor path make it the static hierarchy of the current version.
  EXPECT_EQ(index->num_components(), 4u);
}

TEST(IncrementalMaintainerTest, CascadeIsLocalForLeafAppends) {
  const DataGraph g = MakeFigure1Graph();
  IncrementalMaintainer m(g);
  auto receipt = m.Apply({Mutation::AppendLeaf(5, "item")});
  ASSERT_TRUE(receipt.ok());
  // One new node: the dirty set per level stays a small neighborhood, far
  // below the full node count times levels.
  EXPECT_LT(receipt->dirty_nodes, 3u * g.num_nodes());
  EXPECT_EQ(receipt->full_rounds, 0u);
  ExpectExact(m);
}

}  // namespace
}  // namespace mrx::mutate
