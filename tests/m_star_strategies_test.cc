// Tests for the §4.1 "Other approaches" strategies: bottom-up and hybrid
// evaluation on the M*(k)-index. Both must agree exactly with the data
// graph; bottom-up's downward-check overhead should be visible in the
// stats on structures where subnodes lose outgoing paths.

#include <gtest/gtest.h>

#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(MStarBottomUpTest, MatchesGroundTruthOnFigure1) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(Q(g, "//site/people/person"));
  for (const char* text :
       {"//person", "//site/people/person", "//auction/seller/person",
        "//site/regions/*/item", "//root/site/auctions/auction",
        "//auction/bidder/person"}) {
    PathExpression p = Q(g, text);
    EXPECT_EQ(index.QueryBottomUp(p).answer, eval.Evaluate(p)) << text;
    EXPECT_EQ(index.QueryHybrid(p).answer, eval.Evaluate(p)) << text;
  }
}

TEST(MStarBottomUpTest, SingleLabelQuery) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//b");
  EXPECT_EQ(index.QueryBottomUp(p).answer, eval.Evaluate(p));
  EXPECT_EQ(index.QueryHybrid(p).answer, eval.Evaluate(p));
}

TEST(MStarBottomUpTest, AnchoredFallsBackToTopDown) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "/r/a/b");
  EXPECT_EQ(index.QueryBottomUp(p).answer, eval.Evaluate(p));
  EXPECT_EQ(index.QueryHybrid(p).answer, eval.Evaluate(p));
}

TEST(MStarBottomUpTest, EmptyAnswerQueries) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  for (const char* text : {"//b/a", "//a/b/c", "//missing/label"}) {
    EXPECT_TRUE(index.QueryBottomUp(Q(g, text)).answer.empty()) << text;
    EXPECT_TRUE(index.QueryHybrid(Q(g, text)).answer.empty()) << text;
  }
}

TEST(MStarBottomUpTest, DownwardCheckPrunesLostSuffixes) {
  // Two b nodes 0-bisimilar; only one has a c child. After refinement
  // splits them in I1, the subnode of the childless b loses the outgoing
  // path — exactly the situation §4.1 says bottom-up must re-check.
  DataGraph g = MakeGraph({"r", "a", "b", "b", "c"},
                          {{0, 1}, {1, 2}, {1, 3}, {2, 4}});
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(Q(g, "//a/b"));  // Builds I1 and splits nothing vital.
  PathExpression p = Q(g, "//a/b/c");
  QueryResult r = index.QueryBottomUp(p);
  EXPECT_EQ(r.answer, eval.Evaluate(p));
  EXPECT_EQ(r.answer, (std::vector<NodeId>{4}));
}

TEST(MStarBottomUpTest, HybridMeetPositionsAllAgree) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//site/auctions/auction/seller/person");
  index.Refine(p);
  std::vector<NodeId> expected = eval.Evaluate(p);
  for (size_t meet = 0; meet < p.num_steps(); ++meet) {
    EXPECT_EQ(index.QueryHybrid(p, meet).answer, expected)
        << "meet=" << meet;
  }
}

class StrategySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategySweepTest, AllFiveStrategiesAgreeOnRandomGraphs) {
  DataGraph g = RandomGraph(GetParam(), 60, 4, 30);
  DataEvaluator eval(g);
  MStarIndex index(g);
  const SymbolTable& symbols = g.symbols();
  // Refine a few FUPs to build components.
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 3; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 3; ++b) {
      for (LabelId c = 0; c < symbols.size() && refined < 3; ++c) {
        PathExpression p({a, b, c}, false);
        if (eval.Evaluate(p).empty()) continue;
        index.Refine(p);
        ++refined;
      }
    }
  }
  for (LabelId a = 0; a < symbols.size(); ++a) {
    for (LabelId b = 0; b < symbols.size(); ++b) {
      PathExpression p({a, b, a}, false);
      std::vector<NodeId> expected = eval.Evaluate(p);
      ASSERT_EQ(index.QueryNaive(p).answer, expected);
      ASSERT_EQ(index.QueryTopDown(p).answer, expected);
      ASSERT_EQ(index.QueryBottomUp(p).answer, expected);
      ASSERT_EQ(index.QueryHybrid(p).answer, expected);
      ASSERT_EQ(index.QueryWithPrefilter(p, 1, 2).answer, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategySweepTest,
                         ::testing::Range<uint64_t>(200, 206));

}  // namespace
}  // namespace mrx
