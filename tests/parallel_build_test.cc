// Pins the parallel-construction determinism contract
// (docs/PERFORMANCE.md): every pooled path — sharded bisimulation rounds,
// BuildStaticHierarchy, RefineBatch, the pooled session refiner — must
// produce byte-identical partitions and class ids for ANY thread count,
// including the pool-less serial path. The src/check/ oracle and .mrxcase
// replays rely on stable ids, so any divergence here is a release blocker.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/datasets.h"
#include "index/bisimulation.h"
#include "index/m_star_index.h"
#include "mutate/incremental_maintainer.h"
#include "query/data_evaluator.h"
#include "server/concurrent_session.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace mrx {
namespace {

using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

/// A small tree (no sharing, no cycles).
DataGraph TreeGraph() {
  return MakeGraph({"r", "a", "a", "b", "b", "c", "c", "c"},
                   {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {3, 6}, {4, 7}});
}

/// A diamond DAG: two paths reconverge, giving multi-parent nodes.
DataGraph DiamondGraph() {
  return MakeGraph({"r", "a", "b", "c", "d", "c"},
                   {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {1, 5}, {4, 5}});
}

/// A graph with a reference-edge cycle (the IDREF shape of the XML model).
DataGraph ReferenceCycleGraph() {
  DataGraphBuilder b;
  for (const char* l : {"r", "a", "b", "c", "b"}) b.AddNode(l);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 4);
  b.AddEdge(2, 3);
  b.AddEdge(3, 1, EdgeKind::kReference);  // Cycle a -> b -> c -> a.
  b.AddEdge(4, 3, EdgeKind::kReference);
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

/// Canonical rendering of an M*(k)-index: per component, every alive node
/// id with its k, extent and supernode link. Byte-equality of two
/// fingerprints means identical class ids everywhere.
std::string Fingerprint(const MStarIndex& index) {
  std::string out;
  for (size_t i = 0; i < index.num_components(); ++i) {
    const IndexGraph& comp = index.component(i);
    out += "C" + std::to_string(i) + ":";
    for (IndexNodeId v = 0; v < comp.capacity(); ++v) {
      if (!comp.alive(v)) continue;
      out += " " + std::to_string(v) + "k" + std::to_string(comp.node(v).k);
      if (i > 0) out += "^" + std::to_string(index.supernode(i, v));
      out += "[";
      for (NodeId o : comp.node(v).extent) out += std::to_string(o) + ",";
      out += "]";
    }
    out += "\n";
  }
  return out;
}

class ParallelBisimulationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelBisimulationTest, BlockIdsAreByteIdenticalToSerial) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const DataGraph graphs[] = {TreeGraph(), DiamondGraph(),
                              ReferenceCycleGraph(),
                              RandomGraph(3, 4096, 6, 2048)};
  for (const DataGraph& g : graphs) {
    for (int k = 0; k <= 4; ++k) {
      BisimulationPartition serial = ComputeKBisimulation(g, k);
      BisimulationPartition pooled =
          ComputeKBisimulation(g, k, RefineOptions{&pool});
      ASSERT_EQ(pooled.num_blocks, serial.num_blocks)
          << "nodes=" << g.num_nodes() << " k=" << k;
      ASSERT_EQ(pooled.block_of, serial.block_of)
          << "nodes=" << g.num_nodes() << " k=" << k;
      ASSERT_EQ(pooled.rounds, serial.rounds);
      ASSERT_EQ(pooled.reached_fixpoint, serial.reached_fixpoint);
    }
  }
}

TEST_P(ParallelBisimulationTest, DkConstructPartitionMatchesSerial) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  // The frozen-node path only triggers with mixed requirements; the big
  // graph also crosses the sharding threshold.
  DataGraph g = RandomGraph(17, 3000, 5, 1200);
  std::vector<int32_t> kreq(g.symbols().size());
  for (size_t l = 0; l < kreq.size(); ++l) {
    kreq[l] = static_cast<int32_t>(l % 4);
  }
  BisimulationPartition serial = ComputeDkConstructPartition(g, kreq);
  BisimulationPartition pooled =
      ComputeDkConstructPartition(g, kreq, RefineOptions{&pool});
  EXPECT_EQ(pooled.block_of, serial.block_of);
  EXPECT_EQ(pooled.num_blocks, serial.num_blocks);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelBisimulationTest,
                         ::testing::Values(1, 2, 8));

TEST(ParallelBuildTest, RefineRoundAdvancesLikeFromScratch) {
  DataGraph g = RandomGraph(9, 500, 5, 250);
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  for (int k = 1; k <= 6; ++k) {
    const bool advanced = RefineBisimulationRound(g, &part);
    BisimulationPartition scratch = ComputeKBisimulation(g, k);
    ASSERT_EQ(part.block_of, scratch.block_of) << "k=" << k;
    ASSERT_EQ(part.num_blocks, scratch.num_blocks) << "k=" << k;
    if (!advanced) {
      EXPECT_TRUE(part.reached_fixpoint);
      // Once at the fixpoint, further rounds stay no-ops.
      EXPECT_FALSE(RefineBisimulationRound(g, &part));
      break;
    }
  }
}

TEST(ParallelBuildTest, StaticHierarchyIdenticalAcrossThreadCounts) {
  const DataGraph g = RandomGraph(5, 2500, 6, 1000);
  const std::string serial = Fingerprint(MStarIndex::BuildStaticHierarchy(g, 3));
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(Fingerprint(
                  MStarIndex::BuildStaticHierarchy(g, 3, RefineOptions{&pool})),
              serial)
        << "threads=" << threads;
  }
}

TEST(ParallelBuildTest, StaticHierarchyLevelsAreTheAkPartitions) {
  // The incremental one-round-per-level build must reproduce exactly the
  // per-level A(i) partitions (same grouping at every i).
  const DataGraph g = RandomGraph(13, 200, 4, 100);
  MStarIndex index = MStarIndex::BuildStaticHierarchy(g, 4);
  ASSERT_EQ(index.num_components(), 5u);
  for (int i = 0; i <= 4; ++i) {
    const BisimulationPartition part = ComputeKBisimulation(g, i);
    const IndexGraph& comp = index.component(static_cast<size_t>(i));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        ASSERT_EQ(comp.index_of(u) == comp.index_of(v),
                  part.block_of[u] == part.block_of[v])
            << "i=" << i << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(ParallelBuildTest, DeterminismHoldsAtStreamedScale) {
  // The small-graph tests above cross the sharding threshold barely; this
  // one pins the contract where the scale tier actually runs it — a
  // streamed >= 100k-node reference-rich graph, with the per-level
  // partitions, the full hierarchy fingerprint, and the maintainer's
  // exported specs all byte-identical across pool sizes (including the
  // single-shard fast path at 1 thread).
  auto streamed = harness::BuildDtdRandomGraphStreamed(100000);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  const DataGraph& g = *streamed;
  ASSERT_GE(g.num_nodes(), 100000u);

  constexpr int kMax = 4;
  RefineScratch serial_scratch;
  BisimulationPartition serial =
      ComputeKBisimulation(g, 0, RefineOptions{nullptr, &serial_scratch});
  std::vector<std::vector<uint32_t>> serial_levels = {serial.block_of};
  for (int k = 1; k <= kMax; ++k) {
    RefineBisimulationRound(g, &serial,
                            RefineOptions{nullptr, &serial_scratch});
    serial_levels.push_back(serial.block_of);
  }

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    RefineScratch scratch;
    BisimulationPartition pooled =
        ComputeKBisimulation(g, 0, RefineOptions{&pool, &scratch});
    ASSERT_EQ(pooled.block_of, serial_levels[0]);
    for (int k = 1; k <= kMax; ++k) {
      RefineBisimulationRound(g, &pooled, RefineOptions{&pool, &scratch});
      ASSERT_EQ(pooled.block_of, serial_levels[static_cast<size_t>(k)])
          << "k=" << k;
    }
  }

  const std::string serial_fp =
      Fingerprint(MStarIndex::BuildStaticHierarchy(g, kMax));
  std::vector<MStarComponentSpec> serial_specs;
  {
    mutate::MaintainerOptions options;
    options.k_max = kMax;
    serial_specs = mutate::IncrementalMaintainer(g, options).ExportStaticSpecs();
  }
  for (size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    EXPECT_EQ(Fingerprint(MStarIndex::BuildStaticHierarchy(
                  g, kMax, RefineOptions{&pool})),
              serial_fp);
    mutate::MaintainerOptions options;
    options.k_max = kMax;
    options.pool = &pool;
    const std::vector<MStarComponentSpec> pooled_specs =
        mutate::IncrementalMaintainer(g, options).ExportStaticSpecs();
    ASSERT_EQ(pooled_specs.size(), serial_specs.size());
    for (size_t i = 0; i < pooled_specs.size(); ++i) {
      EXPECT_EQ(pooled_specs[i].extents, serial_specs[i].extents) << "i=" << i;
      EXPECT_EQ(pooled_specs[i].ks, serial_specs[i].ks) << "i=" << i;
      EXPECT_EQ(pooled_specs[i].supernodes, serial_specs[i].supernodes)
          << "i=" << i;
    }
  }
}

/// Label-path expressions actually present in `g` (one per distinct
/// parent/child label pair, extended to length 2 where possible).
std::vector<PathExpression> SamplePaths(const DataGraph& g, size_t limit) {
  std::vector<PathExpression> out;
  std::vector<std::string> seen;
  for (NodeId u = 0; u < g.num_nodes() && out.size() < limit; ++u) {
    for (NodeId v : g.children(u)) {
      std::string text = std::string(g.label_name(u)) + "/" +
                         std::string(g.label_name(v));
      for (NodeId w : g.children(v)) {
        text += "/" + std::string(g.label_name(w));
        break;
      }
      if (std::find(seen.begin(), seen.end(), text) != seen.end()) continue;
      seen.push_back(text);
      auto parsed = PathExpression::Parse(text, g.symbols());
      if (parsed.ok()) out.push_back(*std::move(parsed));
      if (out.size() >= limit) break;
    }
  }
  return out;
}

TEST(ParallelBuildTest, RefineBatchMatchesSequentialRefine) {
  const DataGraph g = RandomGraph(29, 400, 5, 200);
  const std::vector<PathExpression> fups = SamplePaths(g, 12);
  ASSERT_FALSE(fups.empty());

  MStarIndex sequential(g);
  for (const PathExpression& fup : fups) sequential.Refine(fup);
  const std::string expected = Fingerprint(sequential);

  MStarIndex batched(g);
  batched.RefineBatch(fups);
  EXPECT_EQ(Fingerprint(batched), expected);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    MStarIndex pooled(g);
    pooled.set_thread_pool(&pool);
    pooled.RefineBatch(fups);
    EXPECT_EQ(Fingerprint(pooled), expected) << "threads=" << threads;
  }
}

TEST(ParallelBuildTest, PooledSessionRefinerAnswersExactly) {
  const DataGraph g = RandomGraph(41, 300, 5, 150);
  const std::vector<PathExpression> queries = SamplePaths(g, 8);
  ASSERT_FALSE(queries.empty());
  DataEvaluator truth(g);

  server::ConcurrentSessionOptions options;
  options.refine_after = 1;
  options.refine_threads = 2;
  server::ConcurrentSession session(g, options);
  for (int round = 0; round < 3; ++round) {
    for (const PathExpression& q : queries) {
      EXPECT_EQ(session.Query(q).answer, truth.Evaluate(q));
    }
  }
  session.DrainRefinements();
  for (const PathExpression& q : queries) {
    EXPECT_EQ(session.Peek(q).answer, truth.Evaluate(q));
  }
  EXPECT_GT(session.refinements_applied(), 0u);
}

}  // namespace
}  // namespace mrx
