#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/case_gen.h"
#include "check/checker.h"
#include "check/invariants.h"
#include "check/mrxcase.h"
#include "check/oracle.h"
#include "check/shrinker.h"
#include "check/stress.h"
#include "index/a_k_index.h"
#include "index/evaluator.h"
#include "tests/test_util.h"
#include "tools/cli.h"
#include "util/rng.h"

namespace mrx::check {
namespace {

using mrx::testing::MakeFigure1Graph;

GraphSpec ChainSpec(const std::vector<std::string>& labels) {
  GraphSpec spec;
  for (const std::string& l : labels) spec.AddNode(l);
  for (uint32_t i = 1; i < labels.size(); ++i) spec.AddEdge(i - 1, i);
  return spec;
}

TEST(GraphSpecTest, BuildRoundTripsThroughFromDataGraph) {
  GraphSpec spec = ChainSpec({"r", "a", "b"});
  spec.AddEdge(2, 0, /*reference=*/true);
  Result<DataGraph> g = spec.Build();
  ASSERT_TRUE(g.ok()) << g.status();
  GraphSpec back = GraphSpec::FromDataGraph(*g);
  EXPECT_EQ(back.labels, spec.labels);
  EXPECT_EQ(back.root, spec.root);
  ASSERT_EQ(back.edges.size(), spec.edges.size());
  EXPECT_EQ(g->num_reference_edges(), 1u);
}

TEST(GraphSpecTest, WithoutNodeRemapsIdsAndRoot) {
  GraphSpec spec = ChainSpec({"r", "a", "b", "c"});
  spec.AddEdge(3, 1, /*reference=*/true);
  GraphSpec smaller = spec.WithoutNode(1);
  EXPECT_EQ(smaller.labels, (std::vector<std::string>{"r", "b", "c"}));
  // Edges touching node 1 vanish; 2->3 became 1->2.
  ASSERT_EQ(smaller.edges.size(), 1u);
  EXPECT_EQ(smaller.edges[0].from, 1u);
  EXPECT_EQ(smaller.edges[0].to, 2u);
  EXPECT_TRUE(smaller.Build().ok());
}

TEST(QuerySpecTest, CompileMapsWildcardAndUnknown) {
  GraphSpec spec = ChainSpec({"r", "a"});
  Result<DataGraph> g = spec.Build();
  ASSERT_TRUE(g.ok());
  QuerySpec q{{"r", "*", "nosuch"}, {0, 0, 0}, true};
  Result<PathExpression> e = q.Compile(g->symbols());
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_TRUE(e->anchored());
  EXPECT_EQ(e->label(1), kWildcardLabel);
  EXPECT_EQ(e->label(2), kUnknownLabel);
  EXPECT_EQ(q.ToText(), "/r/*/nosuch");
}

TEST(MrxcaseTest, SerializeParseRoundTrip) {
  ReproCase repro;
  repro.seed = 7;
  repro.case_index = 42;
  repro.index_class = "M*:topdown@1";
  repro.note = "shape=diamond expected 3 nodes, got 2";
  repro.graph = ChainSpec({"r", "a", "b"});
  repro.graph.AddEdge(2, 2, /*reference=*/true);
  repro.query = QuerySpec{{"a", "b"}, {0, 1}, false};
  repro.fups.push_back(QuerySpec{{"a"}, {0}, false});

  Result<ReproCase> parsed = ParseCase(SerializeCase(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seed, repro.seed);
  EXPECT_EQ(parsed->case_index, repro.case_index);
  EXPECT_EQ(parsed->index_class, repro.index_class);
  EXPECT_EQ(parsed->note, repro.note);
  EXPECT_EQ(parsed->graph.labels, repro.graph.labels);
  EXPECT_EQ(parsed->graph.edges.size(), repro.graph.edges.size());
  EXPECT_EQ(parsed->query, repro.query);
  ASSERT_EQ(parsed->fups.size(), 1u);
  EXPECT_EQ(parsed->fups[0], repro.fups[0]);
}

TEST(MrxcaseTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCase("not an mrxcase").ok());
  EXPECT_FALSE(ParseCase("mrxcase 1\ne 0 1 reg\n").ok());  // Dangling edge.
}

TEST(CaseGenTest, IsDeterministicPerSeed) {
  CaseGenOptions options;
  Rng a(123), b(123), c(124);
  GeneratedCase ca = GenerateCase(a, options);
  GeneratedCase cb = GenerateCase(b, options);
  GeneratedCase cc = GenerateCase(c, options);
  EXPECT_EQ(ca.shape, cb.shape);
  EXPECT_EQ(ca.graph.labels, cb.graph.labels);
  EXPECT_EQ(ca.graph.edges.size(), cb.graph.edges.size());
  ASSERT_EQ(ca.queries.size(), cb.queries.size());
  for (size_t i = 0; i < ca.queries.size(); ++i) {
    EXPECT_EQ(ca.queries[i], cb.queries[i]);
  }
  // Different seeds diverge (on shape, graph, or workload).
  EXPECT_TRUE(ca.shape != cc.shape || ca.graph.labels != cc.graph.labels ||
              ca.queries != cc.queries);
}

TEST(CaseGenTest, GeneratedGraphsAlwaysBuildAndAudit) {
  CaseGenOptions options;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    GeneratedCase c = GenerateCase(rng, options);
    Result<DataGraph> g = c.graph.Build();
    ASSERT_TRUE(g.ok()) << "seed " << seed << ": " << g.status();
    EXPECT_TRUE(AuditDataGraphCsr(*g).empty()) << "seed " << seed;
  }
}

TEST(InvariantsTest, CleanIndexesPassAudits) {
  DataGraph g = MakeFigure1Graph();
  EXPECT_TRUE(AuditDataGraphCsr(g).empty());
  for (int k : {0, 1, 2}) {
    AkIndex index(g, k);
    EXPECT_TRUE(AuditIndexGraph(index.graph()).empty()) << "k=" << k;
  }
}

TEST(OracleTest, CleanGraphHasNoDiscrepancies) {
  DataGraph g = MakeFigure1Graph();
  std::vector<PathExpression> queries;
  for (const char* text : {"//b", "/r/a/b", "//c/b", "/r/*/b", "//a//b"}) {
    Result<PathExpression> q = PathExpression::Parse(text, g.symbols());
    ASSERT_TRUE(q.ok());
    queries.push_back(*std::move(q));
  }
  std::vector<PathExpression> fups = {queries[1]};
  CaseResult r = RunDifferentialCase(g, queries, fups, OracleOptions{});
  EXPECT_TRUE(r.discrepancies.empty()) << r.discrepancies[0].index_class;
  EXPECT_TRUE(r.violations.empty()) << r.violations[0];
  EXPECT_GT(r.checks, 0u);
}

TEST(OracleTest, FaultInjectionIsDetected) {
  DataGraph g = MakeFigure1Graph();
  Result<PathExpression> q = PathExpression::Parse("//item", g.symbols());
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(GroundTruth(g, *q).empty());  // The drop needs a non-empty answer.
  fault::inject_extent_drop.store(true);
  CaseResult r = RunDifferentialCase(g, {*q}, {}, OracleOptions{});
  fault::inject_extent_drop.store(false);
  EXPECT_FALSE(r.discrepancies.empty());
}

TEST(OracleTest, EvaluateClassReplaysEveryClassId) {
  DataGraph g = MakeFigure1Graph();
  Result<PathExpression> q = PathExpression::Parse("/r/a/b", g.symbols());
  ASSERT_TRUE(q.ok());
  const std::vector<NodeId> expected = GroundTruth(g, *q);
  std::vector<PathExpression> fups = {*q};
  for (const char* id :
       {"A(0)", "A(2)", "1-index", "D(k)-construct", "D(k)-promote@1",
        "UD(1,1)", "M(k)@1", "M*:naive@1", "M*:topdown@0", "M*:bottomup@1",
        "M*:hybrid@1"}) {
    Result<std::vector<NodeId>> actual = EvaluateClass(g, id, *q, fups);
    ASSERT_TRUE(actual.ok()) << id << ": " << actual.status();
    EXPECT_EQ(*actual, expected) << id;
  }
  EXPECT_FALSE(EvaluateClass(g, "bogus", *q, fups).ok());
}

TEST(ShrinkerTest, MinimizesToTheEssentialCore) {
  // Failure model: "graph contains a node labeled x reachable by the
  // query's last label" — minimal repro is a root plus one x node.
  GraphSpec spec = ChainSpec({"r", "a", "b", "x", "c", "c", "c"});
  spec.AddEdge(0, 4);
  QuerySpec query{{"r", "a", "b", "x"}, {0, 0, 0, 0}, false};
  ReproPredicate repro = [](const GraphSpec& g, const QuerySpec& q) {
    if (q.steps.empty() || q.steps.back() != "x") return false;
    for (const std::string& l : g.labels) {
      if (l == "x") return true;
    }
    return false;
  };
  ASSERT_TRUE(repro(spec, query));
  ShrinkOutcome out = ShrinkCase(spec, query, repro);
  EXPECT_TRUE(repro(out.graph, out.query));
  EXPECT_EQ(out.query.num_steps(), 1u);
  EXPECT_LE(out.graph.num_nodes(), 2u);  // Root (unremovable) + the x node.
  EXPECT_GT(out.evaluations, 0u);
}

TEST(ShrinkerTest, RespectsEvaluationBudget) {
  GraphSpec spec = ChainSpec({"r", "a", "b", "c", "d", "e"});
  QuerySpec query{{"r"}, {0}, false};
  size_t calls = 0;
  ReproPredicate repro = [&calls](const GraphSpec&, const QuerySpec&) {
    ++calls;
    return true;  // Everything "fails": worst case for the search.
  };
  ShrinkOptions options;
  options.max_evaluations = 10;
  ShrinkOutcome out = ShrinkCase(spec, query, repro, options);
  EXPECT_LE(out.evaluations, options.max_evaluations + 1);
  EXPECT_EQ(out.evaluations, calls);
}

TEST(CheckerTest, CleanRunOverManySeeds) {
  CheckOptions options;
  options.seed = 99;
  options.num_cases = 150;
  CheckSummary summary = RunCheck(options);
  EXPECT_EQ(summary.cases, 150u);
  EXPECT_TRUE(summary.ok())
      << (summary.failures.empty() ? "counts only"
                                   : summary.failures[0].note);
  EXPECT_GT(summary.checks, 1000u);
}

TEST(CheckerTest, InjectedExtentBugIsCaughtAndShrunkSmall) {
  CheckOptions options;
  options.seed = 1;
  options.num_cases = 30;
  options.max_failures = 3;
  options.inject_extent_drop = true;
  CheckSummary summary = RunCheck(options);
  EXPECT_FALSE(fault::inject_extent_drop.load());  // Guard restored it.
  ASSERT_FALSE(summary.failures.empty());
  EXPECT_FALSE(summary.ok());
  for (const CheckFailure& f : summary.failures) {
    // ISSUE acceptance bar: the shrinker gets a planted extent bug down to
    // a repro of at most 10 nodes.
    EXPECT_LE(f.shrunk_nodes, 10u) << f.note;
    // The shrunk repro must still reproduce under the fault and be clean
    // without it.
    fault::inject_extent_drop.store(true);
    Result<ReplayReport> faulted = ReplayCase(f.repro);
    fault::inject_extent_drop.store(false);
    ASSERT_TRUE(faulted.ok()) << faulted.status();
    EXPECT_TRUE(faulted->reproduced) << f.note;
    Result<ReplayReport> clean = ReplayCase(f.repro);
    ASSERT_TRUE(clean.ok());
    EXPECT_FALSE(clean->reproduced) << f.note;
  }
}

TEST(CheckerTest, WritesReplayableMrxcaseFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mrx_check_test_cases";
  std::filesystem::remove_all(dir);
  CheckOptions options;
  options.seed = 1;
  options.num_cases = 10;
  options.max_failures = 1;
  options.inject_extent_drop = true;
  options.out_dir = dir.string();
  CheckSummary summary = RunCheck(options);
  ASSERT_FALSE(summary.failures.empty());
  ASSERT_FALSE(summary.failures[0].file.empty());
  std::ifstream in(summary.failures[0].file);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  Result<ReproCase> parsed = ParseCase(text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->index_class, summary.failures[0].index_class);
  std::filesystem::remove_all(dir);
}

TEST(StressTest, SmokeRunsCleanAgainstGroundTruth) {
  StressOptions options;
  options.seed = 5;
  options.threads = 3;
  options.rounds = 100;
  StressReport report = RunStressCheck(options);
  EXPECT_TRUE(report.ok())
      << "mismatches=" << report.mismatches
      << " epoch_regressions=" << report.epoch_regressions
      << " final=" << report.final_mismatches;
  EXPECT_EQ(report.queries_run, 300u);
}

TEST(CheckCliTest, CheckVerbExitCodes) {
  std::ostringstream out, err;
  EXPECT_EQ(tools::RunCli({"check", "--cases", "20"}, out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("OK"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(tools::RunCli({"check", "--cases", "10", "--fault", "on",
                           "--max-failures", "1"},
                          out2, err2),
            1);
  EXPECT_NE(out2.str().find("FAILED"), std::string::npos);

  std::ostringstream out3, err3;
  EXPECT_EQ(tools::RunCli({"check", "--mode", "bogus"}, out3, err3), 2);
}

}  // namespace
}  // namespace mrx::check
