// End-to-end checks that the observability layer actually observes: a
// traced ConcurrentSession replay must emit the three per-query phase spans
// (cache_lookup -> index_probe -> data_validation), refinement-batch spans,
// and the refinement/cache/index metrics in the process-global registry.
// The registry is process-global, so every assertion is on a before/after
// delta rather than an absolute value.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/mrx.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/concurrent_session.h"
#include "tests/test_util.h"

namespace mrx::server {
namespace {

using mrx::testing::MakeFigure1Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

const obs::SpanEvent* FindSpan(const std::vector<obs::SpanEvent>& events,
                               std::string_view name) {
  for (const obs::SpanEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool HasAttr(const obs::SpanEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.attrs) {
    if (k == key) return true;
  }
  return false;
}

TEST(ObsIntegrationTest, TracedQueryEmitsAllThreePhaseSpans) {
  DataGraph g = MakeFigure1Graph();
  obs::TraceRecorder tracer({.sample_every = 1});
  ConcurrentSessionOptions options;
  options.refine_after = 100;  // No refinement noise in this test.
  options.tracer = &tracer;
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  session.Query(p);  // Cold: cache miss, full evaluation.
  session.Query(p);  // Warm: served from the answer cache.
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  std::vector<obs::SpanEvent> events = tracer.Events();
  // Two roots; the miss contributes index_probe + data_validation children.
  const obs::SpanEvent* probe = FindSpan(events, "index_probe");
  const obs::SpanEvent* validation = FindSpan(events, "data_validation");
  ASSERT_NE(probe, nullptr);
  ASSERT_NE(validation, nullptr);
  EXPECT_TRUE(HasAttr(*probe, "index_nodes_visited"));
  EXPECT_TRUE(HasAttr(*validation, "data_nodes_validated"));
  // The two phases are carved out of the same evaluation window.
  EXPECT_EQ(probe->start_ns, validation->start_ns);
  EXPECT_EQ(probe->parent_id, validation->parent_id);

  size_t lookups = 0, roots = 0;
  for (const obs::SpanEvent& e : events) {
    if (e.name == "cache_lookup") {
      ++lookups;
      EXPECT_TRUE(HasAttr(e, "hit"));
      EXPECT_NE(e.parent_id, 0u);
    }
    if (e.name == "query") {
      ++roots;
      EXPECT_EQ(e.parent_id, 0u);
      // The miss root carries answer_size; the hit root carries cache_hit.
      EXPECT_TRUE(HasAttr(e, "answer_size") || HasAttr(e, "cache_hit"));
    }
  }
  EXPECT_EQ(lookups, 2u);
  EXPECT_EQ(roots, 2u);

  // Metrics deltas: two queries, one hit, one miss, phase histograms fed.
  auto counter_delta = [&](std::string_view name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(counter_delta("mrx_queries_total"), 2u);
  EXPECT_EQ(counter_delta("mrx_answer_cache_hits_total"), 1u);
  EXPECT_EQ(counter_delta("mrx_answer_cache_misses_total"), 1u);
  auto hist_count = [](const obs::MetricsSnapshot& snap,
                       std::string_view name) -> uint64_t {
    const LatencyHistogram* h = snap.FindHistogram(name);
    return h == nullptr ? 0 : h->count();
  };
  EXPECT_EQ(hist_count(after, "mrx_query_phase_cache_lookup_ns") -
                hist_count(before, "mrx_query_phase_cache_lookup_ns"),
            2u);
  EXPECT_EQ(hist_count(after, "mrx_query_phase_eval_ns") -
                hist_count(before, "mrx_query_phase_eval_ns"),
            1u);  // Only the miss evaluates.
}

TEST(ObsIntegrationTest, RefinementEmitsTelemetryAndForcedSpans) {
  DataGraph g = MakeFigure1Graph();
  // sample_every huge: only always-sampled refine_batch traces make it
  // through, which is exactly what this test wants to see.
  obs::TraceRecorder tracer({.sample_every = 1000000});
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  options.tracer = &tracer;
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  session.Query(p);
  session.Query(p);  // Second observation promotes p to a FUP.
  session.DrainRefinements();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  ASSERT_GE(session.refinements_applied(), 1u);

  EXPECT_GE(after.CounterValue("mrx_refine_fup_promotions_total"),
            before.CounterValue("mrx_refine_fup_promotions_total") + 1);
  EXPECT_GE(after.CounterValue("mrx_refine_partition_splits_total"),
            before.CounterValue("mrx_refine_partition_splits_total"));
  const LatencyHistogram* publish =
      after.FindHistogram("mrx_refine_publish_ns");
  ASSERT_NE(publish, nullptr);
  EXPECT_GE(publish->count(), 1u);

  // The published-index gauges describe the session's current index.
  EXPECT_EQ(after.GaugeValue("mrx_index_epoch"),
            static_cast<int64_t>(session.index_epoch()));
  EXPECT_GT(after.GaugeValue("mrx_index_physical_nodes"), 0);
  EXPECT_GT(after.GaugeValue("mrx_index_components"), 0);

  std::vector<obs::SpanEvent> events = tracer.Events();
  const obs::SpanEvent* batch = FindSpan(events, "refine_batch");
  ASSERT_NE(batch, nullptr);  // Force-sampled despite sample_every=1000000.
  EXPECT_TRUE(HasAttr(*batch, "fup_promotions"));
  EXPECT_TRUE(HasAttr(*batch, "partition_splits"));
  const obs::SpanEvent* publish_span = FindSpan(events, "publish");
  ASSERT_NE(publish_span, nullptr);
  EXPECT_EQ(publish_span->parent_id, batch->span_id);
  // The sampler always takes trace #0, so at most the very first query got
  // a span; the rest stayed unsampled.
  size_t query_roots = 0;
  for (const obs::SpanEvent& e : events) {
    if (e.name == "query") ++query_roots;
  }
  EXPECT_LE(query_roots, 1u);
}

TEST(ObsIntegrationTest, UntracedSessionStillFeedsMetrics) {
  DataGraph g = MakeFigure1Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 100;
  ConcurrentSession session(g, options);  // No tracer at all.
  PathExpression p = Q(g, "//item");

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  session.Query(p);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterValue("mrx_queries_total") -
                before.CounterValue("mrx_queries_total"),
            1u);
}

}  // namespace
}  // namespace mrx::server
