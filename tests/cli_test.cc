#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/cli.h"

namespace mrx::tools {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteTempXml(const std::string& path) {
  std::ofstream f(path);
  f << "<site><person id=\"p0\"/><bidder person=\"p0\"/>"
       "<people><person id=\"p1\"/></people></site>";
}

TEST(CliTest, NoArgsPrintsUsage) {
  CliRun r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpIsSuccess) {
  CliRun r = RunTool({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliRun r = RunTool({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, StatsOnXmlFile) {
  std::string path = TempPath("mrx_cli_stats.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"stats", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("nodes: 5"), std::string::npos);
  EXPECT_NE(r.out.find("reference"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, StatsMissingFileFails) {
  CliRun r = RunTool({"stats", TempPath("does_not_exist.xml")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(CliTest, ConvertRoundTrip) {
  std::string xml_path = TempPath("mrx_cli_convert.xml");
  std::string bin_path = TempPath("mrx_cli_convert.mrxg");
  std::string back_path = TempPath("mrx_cli_convert_back.xml");
  WriteTempXml(xml_path);
  EXPECT_EQ(RunTool({"convert", xml_path, bin_path}).code, 0);
  EXPECT_EQ(RunTool({"convert", bin_path, back_path}).code, 0);
  CliRun stats = RunTool({"stats", back_path});
  EXPECT_NE(stats.out.find("nodes: 5"), std::string::npos);
  for (const auto& p : {xml_path, bin_path, back_path}) {
    std::remove(p.c_str());
  }
}

TEST(CliTest, GenerateQueryAndIndexPipeline) {
  std::string doc_path = TempPath("mrx_cli_pipe.xml");
  std::string index_path = TempPath("mrx_cli_pipe.mrxs");
  CliRun gen = RunTool({"generate", "xmark", doc_path, "--scale", "0.01"});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun build = RunTool({"index", "build", doc_path, index_path, "--fup",
                      "//open_auction/seller/person"});
  ASSERT_EQ(build.code, 0) << build.err;
  EXPECT_NE(build.out.find("components"), std::string::npos);

  CliRun info = RunTool({"index", "info", doc_path, index_path});
  ASSERT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("components: 3"), std::string::npos);

  CliRun query = RunTool({"query", doc_path, index_path,
                      "//open_auction/seller/person"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("precise"), std::string::npos);

  // Every explicit strategy answers too.
  for (const char* strategy : {"topdown", "naive", "bottomup", "hybrid"}) {
    CliRun r = RunTool({"query", doc_path, index_path, "//person", "--strategy",
                    strategy});
    EXPECT_EQ(r.code, 0) << strategy << ": " << r.err;
  }
  CliRun bad = RunTool({"query", doc_path, index_path, "//person", "--strategy",
                    "psychic"});
  EXPECT_EQ(bad.code, 2);

  std::remove(doc_path.c_str());
  std::remove(index_path.c_str());
}

TEST(CliTest, TwigQueryAutoDetected) {
  std::string path = TempPath("mrx_cli_twig.xml");
  {
    std::ofstream f(path);
    f << "<r><a><b/><c/></a><a><c/></a></r>";
  }
  CliRun r = RunTool({"query", path, "//a[b]/c"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 nodes"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("twig"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, QueryWithoutIndexUsesFreshA0) {
  std::string path = TempPath("mrx_cli_query.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"query", path, "//bidder/person"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 nodes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, WorkloadPrintsQueries) {
  std::string path = TempPath("mrx_cli_workload.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"workload", path, "--count", "5", "--max-length", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Five lines, all floating path expressions.
  int lines = 0;
  std::istringstream in(r.out);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.substr(0, 2), "//");
    ++lines;
  }
  EXPECT_EQ(lines, 5);
  std::remove(path.c_str());
}

TEST(CliTest, ServeBenchReportsAndWritesCsv) {
  std::string path = TempPath("mrx_cli_serve.xml");
  std::string csv_path = TempPath("mrx_cli_serve.csv");
  WriteTempXml(path);
  CliRun r = RunTool({"serve-bench", path, "--workers", "2", "--queries",
                      "200", "--count", "8", "--max-length", "3", "--csv",
                      csv_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("qps"), std::string::npos);
  EXPECT_NE(r.out.find("2 workers"), std::string::npos);
  EXPECT_NE(r.out.find("wrote"), std::string::npos);

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header.substr(0, 6), "config");
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(csv, row)));
  std::remove(path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CliTest, ServeBenchRejectsMissingGraph) {
  CliRun r = RunTool({"serve-bench"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownDataset) {
  CliRun r = RunTool({"generate", "mars", TempPath("mrx_cli_mars.xml")});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, MissingFlagValueFails) {
  std::string path = TempPath("mrx_cli_flags.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"workload", path, "--count"});
  EXPECT_EQ(r.code, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrx::tools
