#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "tests/json_check.h"
#include "tools/cli.h"

namespace mrx::tools {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteTempXml(const std::string& path) {
  std::ofstream f(path);
  f << "<site><person id=\"p0\"/><bidder person=\"p0\"/>"
       "<people><person id=\"p1\"/></people></site>";
}

TEST(CliTest, NoArgsPrintsUsage) {
  CliRun r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpIsSuccess) {
  CliRun r = RunTool({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliRun r = RunTool({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, StatsOnXmlFile) {
  std::string path = TempPath("mrx_cli_stats.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"stats", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("nodes: 5"), std::string::npos);
  EXPECT_NE(r.out.find("reference"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, StatsMissingFileFails) {
  CliRun r = RunTool({"stats", TempPath("does_not_exist.xml")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(CliTest, ConvertRoundTrip) {
  std::string xml_path = TempPath("mrx_cli_convert.xml");
  std::string bin_path = TempPath("mrx_cli_convert.mrxg");
  std::string back_path = TempPath("mrx_cli_convert_back.xml");
  WriteTempXml(xml_path);
  EXPECT_EQ(RunTool({"convert", xml_path, bin_path}).code, 0);
  EXPECT_EQ(RunTool({"convert", bin_path, back_path}).code, 0);
  CliRun stats = RunTool({"stats", back_path});
  EXPECT_NE(stats.out.find("nodes: 5"), std::string::npos);
  for (const auto& p : {xml_path, bin_path, back_path}) {
    std::remove(p.c_str());
  }
}

TEST(CliTest, GenerateQueryAndIndexPipeline) {
  std::string doc_path = TempPath("mrx_cli_pipe.xml");
  std::string index_path = TempPath("mrx_cli_pipe.mrxs");
  CliRun gen = RunTool({"generate", "xmark", doc_path, "--scale", "0.01"});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun build = RunTool({"index", "build", doc_path, index_path, "--fup",
                      "//open_auction/seller/person"});
  ASSERT_EQ(build.code, 0) << build.err;
  EXPECT_NE(build.out.find("components"), std::string::npos);

  CliRun info = RunTool({"index", "info", doc_path, index_path});
  ASSERT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("components: 3"), std::string::npos);

  CliRun query = RunTool({"query", doc_path, index_path,
                      "//open_auction/seller/person"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("precise"), std::string::npos);

  // Every explicit strategy answers too.
  for (const char* strategy : {"topdown", "naive", "bottomup", "hybrid"}) {
    CliRun r = RunTool({"query", doc_path, index_path, "//person", "--strategy",
                    strategy});
    EXPECT_EQ(r.code, 0) << strategy << ": " << r.err;
  }
  CliRun bad = RunTool({"query", doc_path, index_path, "//person", "--strategy",
                    "psychic"});
  EXPECT_EQ(bad.code, 2);

  std::remove(doc_path.c_str());
  std::remove(index_path.c_str());
}

TEST(CliTest, TwigQueryAutoDetected) {
  std::string path = TempPath("mrx_cli_twig.xml");
  {
    std::ofstream f(path);
    f << "<r><a><b/><c/></a><a><c/></a></r>";
  }
  CliRun r = RunTool({"query", path, "//a[b]/c"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 nodes"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("twig"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, QueryWithoutIndexUsesFreshA0) {
  std::string path = TempPath("mrx_cli_query.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"query", path, "//bidder/person"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 nodes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, WorkloadPrintsQueries) {
  std::string path = TempPath("mrx_cli_workload.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"workload", path, "--count", "5", "--max-length", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Five lines, all floating path expressions.
  int lines = 0;
  std::istringstream in(r.out);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.substr(0, 2), "//");
    ++lines;
  }
  EXPECT_EQ(lines, 5);
  std::remove(path.c_str());
}

TEST(CliTest, ServeBenchReportsAndWritesCsv) {
  std::string path = TempPath("mrx_cli_serve.xml");
  std::string csv_path = TempPath("mrx_cli_serve.csv");
  WriteTempXml(path);
  CliRun r = RunTool({"serve-bench", path, "--workers", "2", "--queries",
                      "200", "--count", "8", "--max-length", "3", "--csv",
                      csv_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("qps"), std::string::npos);
  EXPECT_NE(r.out.find("2 workers"), std::string::npos);
  EXPECT_NE(r.out.find("wrote"), std::string::npos);

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header.substr(0, 6), "config");
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(csv, row)));
  std::remove(path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CliTest, StatsMetricsExposition) {
  std::string path = TempPath("mrx_cli_stats_metrics.xml");
  WriteTempXml(path);

  CliRun prom = RunTool({"stats", path, "--metrics", "prom"});
  ASSERT_EQ(prom.code, 0) << prom.err;
  EXPECT_NE(prom.out.find("# TYPE mrx_graph_nodes gauge"), std::string::npos);
  EXPECT_NE(prom.out.find("mrx_graph_nodes 5"), std::string::npos);

  CliRun json = RunTool({"stats", path, "--metrics", "json"});
  ASSERT_EQ(json.code, 0) << json.err;
  // The exposition block is the trailing JSONL lines of the output.
  std::istringstream lines(json.out);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    auto doc = mrx::testing::ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->Find("kind"), nullptr);
    EXPECT_NE(doc->Find("name"), nullptr);
    ++parsed;
  }
  EXPECT_GT(parsed, 0);

  EXPECT_EQ(RunTool({"stats", path, "--metrics", "xml"}).code, 2);
  std::remove(path.c_str());
}

// The CI observability smoke check: serve-bench --metrics-out must produce
// all four artifacts, each of which must survive a strict parse, and the
// trace must contain the three per-query phases plus refinement metrics.
TEST(CliTest, ServeBenchMetricsOutArtifactsParse) {
  std::string path = TempPath("mrx_cli_serve_obs.xml");
  std::string out_dir = TempPath("mrx_cli_serve_obs_out");
  WriteTempXml(path);
  CliRun r = RunTool({"serve-bench", path, "--workers", "2", "--queries",
                      "300", "--count", "8", "--max-length", "3",
                      "--metrics-out", out_dir, "--trace-sample", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  namespace fs = std::filesystem;

  // metrics.prom: Prometheus text, every sample line named mrx_*.
  std::ifstream prom(fs::path(out_dir) / "metrics.prom");
  ASSERT_TRUE(prom.good());
  std::string prom_text((std::istreambuf_iterator<char>(prom)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(prom_text.find("mrx_queries_total"), std::string::npos);
  EXPECT_NE(prom_text.find("# TYPE mrx_query_phase_cache_lookup_ns summary"),
            std::string::npos);
  {
    std::istringstream lines(prom_text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      EXPECT_EQ(line.rfind("mrx_", 0), 0u) << line;
    }
  }

  // metrics.jsonl: every line parses; the phase histograms and refinement
  // metrics are present (registered even when the run was too small to
  // refine).
  std::ifstream jsonl(fs::path(out_dir) / "metrics.jsonl");
  ASSERT_TRUE(jsonl.good());
  std::set<std::string> metric_names;
  std::string line;
  while (std::getline(jsonl, line)) {
    auto doc = mrx::testing::ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto* name = doc->Find("name");
    ASSERT_NE(name, nullptr);
    metric_names.insert(name->string_value);
  }
  for (const char* required :
       {"mrx_queries_total", "mrx_query_phase_cache_lookup_ns",
        "mrx_query_phase_index_probe_ns", "mrx_query_phase_data_validation_ns",
        "mrx_refine_fup_promotions_total", "mrx_refine_partition_splits_total",
        "mrx_refine_publish_ns", "mrx_answer_cache_hits_total",
        "mrx_server_queue_depth"}) {
    EXPECT_TRUE(metric_names.count(required)) << required;
  }

  // trace.jsonl: every line parses; all three query phases were traced.
  std::ifstream trace(fs::path(out_dir) / "trace.jsonl");
  ASSERT_TRUE(trace.good());
  std::set<std::string> span_names;
  while (std::getline(trace, line)) {
    auto doc = mrx::testing::ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto* name = doc->Find("name");
    ASSERT_NE(name, nullptr);
    span_names.insert(name->string_value);
  }
  for (const char* phase :
       {"query", "cache_lookup", "index_probe", "data_validation"}) {
    EXPECT_TRUE(span_names.count(phase)) << phase;
  }

  // BENCH_server.json: the machine-readable trajectory record.
  std::ifstream bench(fs::path(out_dir) / "BENCH_server.json");
  ASSERT_TRUE(bench.good());
  std::string bench_text((std::istreambuf_iterator<char>(bench)),
                         std::istreambuf_iterator<char>());
  auto doc = mrx::testing::ParseJson(bench_text);
  ASSERT_TRUE(doc.has_value()) << bench_text;
  const auto* bench_name = doc->Find("bench");
  ASSERT_NE(bench_name, nullptr);
  EXPECT_EQ(bench_name->string_value, "serve-bench");
  const auto* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* key : {"workers", "queries", "qps", "p99_us",
                          "cache_hit_rate", "utilization", "trace_spans"}) {
    const auto* field = metrics->Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_TRUE(field->is_number());
  }
  EXPECT_EQ(metrics->Find("queries")->number_value, 300);

  std::remove(path.c_str());
  fs::remove_all(out_dir);
}

TEST(CliTest, ServeBenchRejectsMissingGraph) {
  CliRun r = RunTool({"serve-bench"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownDataset) {
  CliRun r = RunTool({"generate", "mars", TempPath("mrx_cli_mars.xml")});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, MissingFlagValueFails) {
  std::string path = TempPath("mrx_cli_flags.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"workload", path, "--count"});
  EXPECT_EQ(r.code, 1);
  std::remove(path.c_str());
}

// --- Query diagnostics verbs (ISSUE 7) -------------------------------------

TEST(CliTest, QueryExplainPrintsEstimateNextToActuals) {
  std::string path = TempPath("mrx_cli_explain.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"query", path, "//bidder/person", "--explain"});
  ASSERT_EQ(r.code, 0) << r.err;
  // The acceptance shape: chosen strategy with its estimated cost, the
  // considered table, and the measured actual-cost counters side by side.
  EXPECT_NE(r.out.find("strategy:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("estimated cost"), std::string::npos);
  EXPECT_NE(r.out.find("chosen"), std::string::npos);
  EXPECT_NE(r.out.find("index_nodes_visited="), std::string::npos);
  EXPECT_NE(r.out.find("extent_elems_scanned="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, QueryExplainJsonIsOneStrictRecord) {
  std::string path = TempPath("mrx_cli_explain_json.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"query", path, "//bidder/person", "--explain",
                      "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string line = r.out.substr(0, r.out.find('\n'));
  auto doc = mrx::testing::ParseJson(line);
  ASSERT_TRUE(doc.has_value()) << r.out;
  EXPECT_EQ(doc->Find("query")->string_value, "//bidder/person");
  const auto* considered = doc->Find("considered");
  ASSERT_NE(considered, nullptr);
  EXPECT_EQ(considered->array.size(), 4u);  // All four §4.1 strategies.
  const auto* cost = doc->Find("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_NE(cost->Find("index_nodes_visited"), nullptr);
  EXPECT_NE(doc->Find("levels_touched"), nullptr);
  std::remove(path.c_str());
}

TEST(CliTest, ExplainVerbComparesAllStrategies) {
  std::string path = TempPath("mrx_cli_explain_verb.xml");
  WriteTempXml(path);
  CliRun r = RunTool({"explain", path, "//bidder/person"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* s : {"naive", "topdown", "bottomup", "hybrid"}) {
    EXPECT_NE(r.out.find(s), std::string::npos) << s << "\n" << r.out;
  }
  EXPECT_NE(r.out.find("est_cost"), std::string::npos);
  EXPECT_NE(r.out.find("chosen"), std::string::npos);

  CliRun json = RunTool({"explain", path, "//bidder/person", "--json"});
  ASSERT_EQ(json.code, 0) << json.err;
  std::istringstream lines(json.out);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    auto doc = mrx::testing::ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->Find("strategy"), nullptr);
    ++parsed;
  }
  EXPECT_GE(parsed, 1);  // One record per eligible strategy.
  std::remove(path.c_str());
}

TEST(CliTest, DiagBundleWritesArtifactsThatParse) {
  std::string path = TempPath("mrx_cli_diag.xml");
  std::string out_dir = TempPath("mrx_cli_diag_out");
  WriteTempXml(path);
  CliRun r = RunTool({"diag", path, "--queries", "40", "--count", "8",
                      "--slow-query-ms", "0.0001", "--out", out_dir});
  ASSERT_EQ(r.code, 0) << r.err;
  namespace fs = std::filesystem;
  for (const char* name : {"flight.jsonl", "slow_queries.jsonl",
                           "trace.jsonl", "metrics.prom", "metrics.jsonl",
                           "diag.json"}) {
    EXPECT_TRUE(fs::exists(fs::path(out_dir) / name)) << name;
  }

  // diag.json is one strict object with the run summary.
  std::ifstream summary(fs::path(out_dir) / "diag.json");
  std::string text((std::istreambuf_iterator<char>(summary)),
                   std::istreambuf_iterator<char>());
  auto doc = mrx::testing::ParseJson(text);
  ASSERT_TRUE(doc.has_value()) << text;
  EXPECT_EQ(doc->Find("queries")->number_value, 40);
  EXPECT_GT(doc->Find("slow_queries")->number_value, 0);
  EXPECT_GT(doc->Find("flight_events")->number_value, 0);

  // Slow-query trace ids resolve in the bundle's trace.jsonl.
  std::set<uint64_t> trace_ids;
  std::ifstream trace(fs::path(out_dir) / "trace.jsonl");
  std::string line;
  while (std::getline(trace, line)) {
    auto span = mrx::testing::ParseJson(line);
    ASSERT_TRUE(span.has_value()) << line;
    trace_ids.insert(static_cast<uint64_t>(span->Find("trace")->number_value));
  }
  std::ifstream slow(fs::path(out_dir) / "slow_queries.jsonl");
  int slow_records = 0;
  while (std::getline(slow, line)) {
    auto record = mrx::testing::ParseJson(line);
    ASSERT_TRUE(record.has_value()) << line;
    const uint64_t id =
        static_cast<uint64_t>(record->Find("trace_id")->number_value);
    EXPECT_TRUE(trace_ids.count(id)) << "unresolved trace id " << id;
    ++slow_records;
  }
  EXPECT_GT(slow_records, 0);

  std::remove(path.c_str());
  fs::remove_all(out_dir);
}

TEST(CliTest, ServeBenchSlowQueryCaptureJoinsTraces) {
  std::string path = TempPath("mrx_cli_serve_slow.xml");
  std::string out_dir = TempPath("mrx_cli_serve_slow_out");
  WriteTempXml(path);
  CliRun r = RunTool({"serve-bench", path, "--workers", "2", "--queries",
                      "200", "--count", "8", "--max-length", "3",
                      "--slow-query-ms", "0.0001", "--metrics-out", out_dir});
  ASSERT_EQ(r.code, 0) << r.err;
  namespace fs = std::filesystem;
  std::set<uint64_t> trace_ids;
  std::ifstream trace(fs::path(out_dir) / "trace.jsonl");
  ASSERT_TRUE(trace.good());
  std::string line;
  while (std::getline(trace, line)) {
    auto span = mrx::testing::ParseJson(line);
    ASSERT_TRUE(span.has_value()) << line;
    trace_ids.insert(static_cast<uint64_t>(span->Find("trace")->number_value));
  }
  std::ifstream slow(fs::path(out_dir) / "slow_queries.jsonl");
  ASSERT_TRUE(slow.good());
  int slow_records = 0;
  while (std::getline(slow, line)) {
    auto record = mrx::testing::ParseJson(line);
    ASSERT_TRUE(record.has_value()) << line;
    const uint64_t id =
        static_cast<uint64_t>(record->Find("trace_id")->number_value);
    if (id != 0) {
      EXPECT_TRUE(trace_ids.count(id)) << id;
    }
    ++slow_records;
  }
  EXPECT_GT(slow_records, 0);  // The tiny threshold catches everything.

  // BENCH_server.json carries the est-vs-actual calibration numbers.
  std::ifstream bench(fs::path(out_dir) / "BENCH_server.json");
  std::string bench_text((std::istreambuf_iterator<char>(bench)),
                         std::istreambuf_iterator<char>());
  auto doc = mrx::testing::ParseJson(bench_text);
  ASSERT_TRUE(doc.has_value()) << bench_text;
  const auto* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* key :
       {"cost_index_nodes_visited", "cost_extent_elems_scanned",
        "est_cost_units", "est_actual_cost_ratio", "slow_queries",
        "flight_events"}) {
    const auto* field = metrics->Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_TRUE(field->is_number());
  }
  EXPECT_GT(metrics->Find("slow_queries")->number_value, 0);

  std::remove(path.c_str());
  fs::remove_all(out_dir);
}

}  // namespace
}  // namespace mrx::tools
