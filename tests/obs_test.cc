#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/json_check.h"

namespace mrx::obs {
namespace {

using mrx::testing::JsonValue;
using mrx::testing::ParseJson;

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("mrx_test_total");
  Counter* c2 = reg.GetCounter("mrx_test_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("mrx_other_total"), c1);
  EXPECT_EQ(reg.GetGauge("mrx_test_depth"), reg.GetGauge("mrx_test_depth"));
  EXPECT_EQ(reg.GetHistogram("mrx_test_ns"), reg.GetHistogram("mrx_test_ns"));
}

TEST(MetricsRegistryTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mrx_test_total");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);

  Gauge* g = reg.GetGauge("mrx_test_depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
  g->Set(-5);
  EXPECT_EQ(g->Value(), -5);

  Histogram* h = reg.GetHistogram("mrx_test_ns");
  h->Record(100);
  h->Record(200);
  LatencyHistogram merged = h->Merged();
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.sum(), 300u);
  EXPECT_EQ(merged.max(), 200u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndLookupsWork) {
  MetricsRegistry reg;
  reg.GetCounter("mrx_b_total")->Increment(2);
  reg.GetCounter("mrx_a_total")->Increment(1);
  reg.GetGauge("mrx_z_gauge")->Set(9);
  reg.GetHistogram("mrx_h_ns")->Record(50);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "mrx_a_total");  // Sorted by name.
  EXPECT_EQ(snap.counters[1].name, "mrx_b_total");
  EXPECT_EQ(snap.CounterValue("mrx_b_total"), 2u);
  EXPECT_EQ(snap.GaugeValue("mrx_z_gauge"), 9);
  ASSERT_NE(snap.FindHistogram("mrx_h_ns"), nullptr);
  EXPECT_EQ(snap.FindHistogram("mrx_h_ns")->count(), 1u);

  // Unregistered names fall back to zero values, not crashes.
  EXPECT_EQ(snap.CounterValue("mrx_missing"), 0u);
  EXPECT_EQ(snap.GaugeValue("mrx_missing"), 0);
  EXPECT_EQ(snap.FindHistogram("mrx_missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetForTestZeroesButKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mrx_test_total");
  Gauge* g = reg.GetGauge("mrx_test_gauge");
  Histogram* h = reg.GetHistogram("mrx_test_ns");
  c->Increment(5);
  g->Set(5);
  h->Record(5);
  reg.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Merged().count(), 0u);
  // The same pointers keep recording after the reset.
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("mrx_test_total"), c);
}

TEST(MetricsRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, ThisThreadStripeIsStableAndInRange) {
  size_t mine = ThisThreadStripe();
  EXPECT_LT(mine, kMetricStripes);
  EXPECT_EQ(ThisThreadStripe(), mine);  // Stable within a thread.
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNoUpdates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mrx_conc_total");
  Histogram* h = reg.GetHistogram("mrx_conc_ns");
  Gauge* g = reg.GetGauge("mrx_conc_gauge");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  // One reader thread snapshots continuously while writers record: snapshots
  // must stay internally sane (counter monotone, histogram count bounded).
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = reg.Snapshot();
      uint64_t now = snap.CounterValue("mrx_conc_total");
      EXPECT_GE(now, last);
      last = now;
      const LatencyHistogram* hist = snap.FindHistogram("mrx_conc_ns");
      ASSERT_NE(hist, nullptr);
      EXPECT_LE(hist->count(),
                static_cast<uint64_t>(kThreads) * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i % 1000) + 1);
        g->Add(t % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->Merged().count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g->Value(), 0);  // Equal +1/-1 writers cancel out.
}

// --- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorderTest, DisabledSpanOperationsAreNoOps) {
  Span span;  // Default-constructed: disabled.
  EXPECT_FALSE(span.enabled());
  span.AddAttr("k", 1);
  Span child = span.Child("child");
  EXPECT_FALSE(child.enabled());
  span.End();          // No recorder to touch.
  child.EndManual(0, 0);
}

TEST(TraceRecorderTest, SamplesEveryNthTrace) {
  TraceRecorder::Options options;
  options.sample_every = 4;
  TraceRecorder recorder(options);
  int enabled = 0;
  for (int i = 0; i < 16; ++i) {
    Span span = recorder.StartTrace("query");
    if (span.enabled()) ++enabled;
  }
  EXPECT_EQ(enabled, 4);
  EXPECT_EQ(recorder.traces_started(), 16u);
  EXPECT_EQ(recorder.size(), 4u);  // Destructor recorded each enabled span.
}

TEST(TraceRecorderTest, SampleEveryZeroDisablesEverything) {
  TraceRecorder::Options options;
  options.sample_every = 0;
  TraceRecorder recorder(options);
  EXPECT_FALSE(recorder.StartTrace("query").enabled());
  EXPECT_FALSE(recorder.StartTrace("query", /*always_sample=*/true).enabled());
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorderTest, AlwaysSampleBypassesTheSampler) {
  TraceRecorder::Options options;
  options.sample_every = 1000;
  TraceRecorder recorder(options);
  { Span s = recorder.StartTrace("rare"); }          // n=0: sampled anyway.
  { Span s = recorder.StartTrace("unsampled"); }     // n=1: dropped.
  EXPECT_TRUE(recorder.StartTrace("forced", /*always_sample=*/true).enabled());
}

TEST(TraceRecorderTest, ChildSpansLinkToTheirParent) {
  TraceRecorder recorder({.sample_every = 1});
  {
    Span root = recorder.StartTrace("query");
    ASSERT_TRUE(root.enabled());
    root.AddAttr("answer_size", 3);
    Span child = root.Child("cache_lookup");
    child.AddAttr("hit", 1);
    child.End();
    Span second = root.Child("index_probe");
    second.End();
  }
  std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  // Children end before the root, so the root is last.
  const SpanEvent& root = events[2];
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.parent_id, 0u);
  ASSERT_EQ(root.attrs.size(), 1u);
  EXPECT_EQ(root.attrs[0].first, "answer_size");
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(events[i].parent_id, root.span_id);
    EXPECT_EQ(events[i].trace_id, root.trace_id);
    EXPECT_NE(events[i].span_id, root.span_id);
  }
}

TEST(TraceRecorderTest, EndManualOverridesTheRaiiWindow) {
  TraceRecorder recorder({.sample_every = 1});
  Span span = recorder.StartTrace("phase");
  span.EndManual(/*start_ns=*/123, /*duration_ns=*/456);
  span.End();  // Idempotent: already ended.
  std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 123u);
  EXPECT_EQ(events[0].duration_ns, 456u);
}

TEST(TraceRecorderTest, BufferBoundCountsDroppedSpans) {
  TraceRecorder recorder({.sample_every = 1, .max_events = 2});
  std::vector<uint64_t> trace_ids;
  for (int i = 0; i < 5; ++i) {
    Span s = recorder.StartTrace("query");
    trace_ids.push_back(s.trace_id());
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  // A true ring: the overwrites evict the OLDEST spans, so the two newest
  // traces survive, oldest-first.
  std::vector<SpanEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, trace_ids[3]);
  EXPECT_EQ(events[1].trace_id, trace_ids[4]);
}

TEST(TraceRecorderTest, OverwritesBumpTheGlobalDroppedCounter) {
  Counter* dropped = MetricsRegistry::Global().GetCounter(
      "mrx_trace_dropped_total");
  const uint64_t before = dropped->Value();
  TraceRecorder recorder({.sample_every = 1, .max_events = 1});
  for (int i = 0; i < 3; ++i) {
    Span s = recorder.StartTrace("query");
  }
  EXPECT_EQ(recorder.dropped(), 2u);
  EXPECT_EQ(dropped->Value(), before + 2);
}

TEST(TraceRecorderTest, MovedFromSpanIsDisabled) {
  TraceRecorder recorder({.sample_every = 1});
  Span a = recorder.StartTrace("query");
  Span b = std::move(a);
  EXPECT_FALSE(a.enabled());  // NOLINT(bugprone-use-after-move): intended.
  EXPECT_TRUE(b.enabled());
  b.End();
  EXPECT_EQ(recorder.size(), 1u);  // Recorded exactly once.
}

TEST(TraceRecorderTest, JsonlRoundTripsThroughAParser) {
  TraceRecorder recorder({.sample_every = 1});
  {
    Span root = recorder.StartTrace("query");
    Span child = root.Child("cache_lookup");
    child.AddAttr("hit", 0);
    child.End();
    root.AddAttr("answer_size", 7);
  }
  std::ostringstream os;
  recorder.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::map<std::string, const char*> expected_attr = {
      {"cache_lookup", "hit"}, {"query", "answer_size"}};
  int parsed = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object());
    const JsonValue* name = doc->Find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is_string());
    for (const char* key : {"trace", "span", "parent", "start_ns", "dur_ns"}) {
      const JsonValue* field = doc->Find(key);
      ASSERT_NE(field, nullptr) << key;
      EXPECT_TRUE(field->is_number());
    }
    const JsonValue* attrs = doc->Find("attrs");
    ASSERT_NE(attrs, nullptr);
    EXPECT_NE(attrs->Find(expected_attr.at(name->string_value)), nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

// --- Exposition ------------------------------------------------------------

MetricsSnapshot MakeSampleSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("mrx_queries_total")->Increment(42);
  reg.GetGauge("mrx_server_queue_depth")->Set(-3);
  Histogram* h = reg.GetHistogram("mrx_query_phase_eval_ns");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v * 10);
  return reg.Snapshot();
}

TEST(ExpositionTest, PrometheusTextHasTypedSamples) {
  std::ostringstream os;
  WritePrometheusText(MakeSampleSnapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE mrx_queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("mrx_queries_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mrx_server_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("mrx_server_queue_depth -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mrx_query_phase_eval_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("mrx_query_phase_eval_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mrx_query_phase_eval_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mrx_query_phase_eval_ns_count 100"), std::string::npos);
  EXPECT_NE(text.find("mrx_query_phase_eval_ns_sum 50500"), std::string::npos);
  // Every non-comment line is `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("mrx_", 0), 0u) << line;
  }
}

TEST(ExpositionTest, JsonlSnapshotRoundTripsThroughAParser) {
  std::ostringstream os;
  WriteJsonlSnapshot(MakeSampleSnapshot(), os);
  std::istringstream lines(os.str());
  std::string line;
  std::set<std::string> kinds;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object());
    const JsonValue* kind = doc->Find("kind");
    ASSERT_NE(kind, nullptr);
    kinds.insert(kind->string_value);
    ASSERT_NE(doc->Find("name"), nullptr);
    if (kind->string_value == "histogram") {
      for (const char* key : {"count", "sum", "max", "p50", "p95", "p99",
                              "mean"}) {
        const JsonValue* field = doc->Find(key);
        ASSERT_NE(field, nullptr) << key;
        EXPECT_TRUE(field->is_number());
      }
      EXPECT_EQ(doc->Find("count")->number_value, 100);
    } else {
      ASSERT_NE(doc->Find("value"), nullptr);
    }
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"counter", "gauge", "histogram"}));
}

TEST(ExpositionTest, AppendJsonStringEscapes) {
  std::ostringstream os;
  AppendJsonString(os, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->is_string());
}

// --- Bench trajectory record ----------------------------------------------

TEST(BenchJsonTest, WriteBenchJsonRoundTrips) {
  std::ostringstream os;
  harness::WriteBenchJson(
      os, "server_throughput",
      {{"xmark_4w_qps", 12345.5},
       {"xmark_4w_p99_us", 67.25},
       {"bad_value", std::numeric_limits<double>::quiet_NaN()}});
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* bench = doc->Find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->string_value, "server_throughput");
  const JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  EXPECT_DOUBLE_EQ(metrics->Find("xmark_4w_qps")->number_value, 12345.5);
  EXPECT_DOUBLE_EQ(metrics->Find("xmark_4w_p99_us")->number_value, 67.25);
  // Non-finite values must serialize as 0, keeping the record parseable.
  EXPECT_DOUBLE_EQ(metrics->Find("bad_value")->number_value, 0);
}

}  // namespace
}  // namespace mrx::obs
