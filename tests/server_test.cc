// Tests for the query-serving layer (src/server/): the bounded MPMC
// request queue and its backpressure contract, the epoch-tagged sharded
// answer cache, and QueryServer's submit/execute/shutdown/snapshot
// behavior. Blocking scenarios synchronize on promises/futures rather
// than sleeps, so they are deterministic under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mrx.h"
#include "server/answer_cache.h"
#include "server/bounded_queue.h"
#include "server/query_server.h"
#include "server/server_stats.h"
#include "tests/test_util.h"
#include "util/table_writer.h"

namespace mrx::server {
namespace {

using mrx::testing::MakeFigure1Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(BoundedQueueTest, FifoWithTryPushBackpressure) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));  // Full: the backpressure signal.
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_TRUE(q.TryPush(c));  // Space again.
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BoundedQueueTest, CloseDrainsAcceptedItemsThenStops) {
  BoundedQueue<int> q(4);
  int a = 1, b = 2;
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  q.Close();
  EXPECT_FALSE(q.TryPush(a));   // No intake after close...
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);  // ...but accepted work still drains.
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // Closed and drained.
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 50;
  BoundedQueue<int> q(4);  // Small capacity: producers block and resume.

  std::mutex mu;
  std::vector<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(*item);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(received[i], i);  // Each value exactly once.
  }
}

CachedAnswerPtr MakeEntry(std::vector<NodeId> answer) {
  QueryResult r;
  r.answer = std::move(answer);
  r.precise = true;
  return ShardedAnswerCache::Wrap(r);
}

TEST(ShardedAnswerCacheTest, PutGetRoundTripsWithinEpoch) {
  ShardedAnswerCache cache(/*capacity=*/64, /*num_shards=*/4);
  cache.Put("//a/b", MakeEntry({1, 2, 3}), /*epoch=*/0);
  CachedAnswerPtr out = cache.Get("//a/b");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->answer, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(cache.Get("//a/c"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedAnswerCacheTest, StaleEpochPutIsDropped) {
  ShardedAnswerCache cache(64, 4);
  cache.Invalidate(/*new_epoch=*/1);
  // A racing insert computed under the superseded index must not land.
  cache.Put("//a/b", MakeEntry({1}), /*epoch=*/0);
  EXPECT_EQ(cache.Get("//a/b"), nullptr);
  cache.Put("//a/b", MakeEntry({2}), /*epoch=*/1);
  CachedAnswerPtr out = cache.Get("//a/b");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->answer, (std::vector<NodeId>{2}));
}

TEST(ShardedAnswerCacheTest, InvalidateClearsAllShards) {
  ShardedAnswerCache cache(64, 4);
  for (int i = 0; i < 20; ++i) {
    cache.Put("key" + std::to_string(i), MakeEntry({NodeId(i)}), 0);
  }
  EXPECT_GT(cache.size(), 0u);
  cache.Invalidate(1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedAnswerCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedAnswerCache cache(64, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(QueryServerTest, ExecuteAnswersExactly) {
  DataGraph g = MakeFigure1Graph();
  QueryServerOptions options;
  options.num_workers = 2;
  QueryServer server(g, options);
  DataEvaluator eval(g);

  std::vector<PathExpression> queries = {
      Q(g, "//site/people/person"), Q(g, "//item"),
      Q(g, "//site/auctions/auction/bidder/person")};
  for (const PathExpression& q : queries) {
    Result<QueryResult> r = server.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->answer, eval.Evaluate(q));
  }

  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.queries_answered, queries.size());
  EXPECT_EQ(stats.latency.count(), queries.size());
  EXPECT_EQ(stats.num_workers, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServerTest, SubmitInvokesCallbackWithAnswer) {
  DataGraph g = MakeFigure1Graph();
  QueryServer server(g, {});
  PathExpression p = Q(g, "//person");

  std::promise<std::vector<NodeId>> answered;
  ASSERT_TRUE(server
                  .Submit(p,
                          [&](const QueryResult& r) {
                            answered.set_value(r.answer);
                          })
                  .ok());
  EXPECT_EQ(answered.get_future().get(), DataEvaluator(g).Evaluate(p));
}

TEST(QueryServerTest, SubmitRejectsWhenQueueFull) {
  DataGraph g = MakeFigure1Graph();
  QueryServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  QueryServer server(g, options);
  PathExpression p = Q(g, "//person");

  // Block the only worker inside the first request's callback, so the
  // second request parks in the queue and the third finds it full.
  std::promise<void> entered, release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> completed{0};
  ASSERT_TRUE(server
                  .Submit(p,
                          [&, gate](const QueryResult&) {
                            entered.set_value();
                            gate.wait();
                            completed.fetch_add(1);
                          })
                  .ok());
  entered.get_future().wait();  // Worker is now parked; queue is empty.

  ASSERT_TRUE(
      server.Submit(p, [&](const QueryResult&) { completed.fetch_add(1); })
          .ok());  // Fills the queue.
  Status overflow =
      server.Submit(p, [&](const QueryResult&) { completed.fetch_add(1); });
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);

  release.set_value();
  server.Shutdown();  // Completes the two accepted requests.
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(server.Snapshot().rejected, 1u);
}

TEST(QueryServerTest, ShutdownCompletesAcceptedThenRejects) {
  DataGraph g = MakeFigure1Graph();
  QueryServerOptions options;
  options.num_workers = 2;
  QueryServer server(g, options);
  PathExpression p = Q(g, "//site/people/person");

  std::atomic<int> completed{0};
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        server.Submit(p, [&](const QueryResult&) { completed.fetch_add(1); })
            .ok());
  }
  server.Shutdown();
  EXPECT_EQ(completed.load(), kRequests);  // Accepted work never dropped.

  EXPECT_EQ(server.Submit(p, [](const QueryResult&) {}).code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(server.Execute(p).ok());
  server.Shutdown();  // Idempotent.
}

TEST(ServerStatsTest, TableRowMatchesHeaders) {
  ServerStats stats;
  stats.queries_answered = 100;
  stats.cache_hits = 40;
  stats.rejected = 2;
  stats.num_workers = 4;
  stats.refinements_applied = 3;
  for (uint64_t ns : {1000u, 2000u, 4000u}) stats.latency.Record(ns);

  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.4);
  TableWriter table(ServerStatsHeaders());
  AppendServerStatsRow(stats, "xmark/4w", /*qps=*/1234.5, &table);
  EXPECT_EQ(table.num_rows(), 1u);

  std::ostringstream csv;
  table.RenderCsv(csv);
  std::string text = csv.str();
  EXPECT_NE(text.find("xmark/4w"), std::string::npos);
  EXPECT_NE(text.find("p95_us"), std::string::npos);
}

}  // namespace
}  // namespace mrx::server
