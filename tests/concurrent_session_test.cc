// Tests for server::ConcurrentSession: N threads replaying the same
// workload stream must produce answers byte-identical to a serial
// AdaptiveIndexSession replay (answers are exact regardless of how far
// background refinement has progressed), and the publication protocol
// (drain, epoch bump, cache invalidation, inbox shedding) must behave
// deterministically. The multi-threaded tests avoid sleeps and use
// DrainRefinements() for checkpoints, so they are ThreadSanitizer-friendly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/mrx.h"
#include "server/concurrent_session.h"
#include "tests/test_util.h"

namespace mrx::server {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

/// A small stream with repeats, so FUP extraction promotes several paths
/// while the readers are still running.
std::vector<PathExpression> Figure1Workload(const DataGraph& g) {
  std::vector<PathExpression> w;
  for (std::string_view text :
       {"//site/people/person", "//person", "//item",
        "//site/auctions/auction/bidder/person", "//site/people/person",
        "/site/regions/europe/item", "//auction/bidder",
        "//site/people/person", "//site/auctions/auction/bidder/person",
        "//regions//item", "//person", "//auction/bidder"}) {
    w.push_back(Q(g, text));
  }
  return w;
}

TEST(ConcurrentSessionTest, AnswersMatchSerialReplay) {
  DataGraph g = MakeFigure1Graph();
  std::vector<PathExpression> workload = Figure1Workload(g);

  // Serial ground truth: one AdaptiveIndexSession replay of the stream.
  SessionOptions serial_options;
  serial_options.refine_after = 2;
  AdaptiveIndexSession serial(g, serial_options);
  std::vector<std::vector<NodeId>> expected;
  expected.reserve(workload.size());
  for (const PathExpression& q : workload) {
    expected.push_back(serial.Query(q).answer);
  }

  for (auto strategy : {SessionOptions::Strategy::kTopDown,
                        SessionOptions::Strategy::kAuto}) {
    ConcurrentSessionOptions options;
    options.refine_after = 2;
    options.strategy = strategy;
    ConcurrentSession session(g, options);

    constexpr size_t kThreads = 4;
    constexpr size_t kRounds = 5;
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (size_t r = 0; r < kRounds; ++r) {
          for (size_t i = 0; i < workload.size(); ++i) {
            QueryResult got = session.Query(workload[i]);
            if (got.answer != expected[i]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(session.queries_answered(),
              kThreads * kRounds * workload.size());
    session.DrainRefinements();
    // The stream repeats several paths past refine_after, so the
    // background worker must have refined and published at least once.
    EXPECT_GE(session.refinements_applied(), 1u);
    EXPECT_GE(session.index_publications(), 1u);
    EXPECT_EQ(session.observations_pending(), 0u);
  }
}

TEST(ConcurrentSessionTest, DrainMakesPromotedQueriesPrecise) {
  DataGraph g = MakeFigure1Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  session.Query(p);
  session.Query(p);  // Second observation promotes p to a FUP.
  session.DrainRefinements();

  EXPECT_GE(session.refinements_applied(), 1u);
  EXPECT_GE(session.index_epoch(), 1u);
  // Peek answers on the published index without recording an observation.
  QueryResult refined = session.Peek(p);
  EXPECT_TRUE(refined.precise);
  EXPECT_EQ(refined.answer, DataEvaluator(g).Evaluate(p));
}

TEST(ConcurrentSessionTest, CacheServesRepeatsWithinEpoch) {
  DataGraph g = MakeFigure1Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 100;  // No publications in this test.
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  QueryResult cold = session.Query(p);
  EXPECT_GT(cold.stats.total(), 0u);
  EXPECT_EQ(session.cache_hits(), 0u);

  QueryResult warm = session.Query(p);
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_EQ(warm.answer, cold.answer);
  EXPECT_EQ(warm.stats.total(), 0u);  // Served from the answer cache.
}

TEST(ConcurrentSessionTest, PublicationInvalidatesCache) {
  DataGraph g = MakeFigure1Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  session.Query(p);                        // Cold; cached under epoch 0.
  session.Query(p);                        // Hit; promotes p in background.
  EXPECT_EQ(session.cache_hits(), 1u);
  session.DrainRefinements();              // Refined index published.
  EXPECT_GE(session.index_epoch(), 1u);
  EXPECT_EQ(session.cache_entries(), 0u);  // Invalidated at publication.

  QueryResult recomputed = session.Query(p);  // Miss; re-evaluated.
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_TRUE(recomputed.precise);
  QueryResult hit = session.Query(p);  // Cached again under the new epoch.
  EXPECT_EQ(session.cache_hits(), 2u);
  EXPECT_EQ(hit.answer, recomputed.answer);
}

TEST(ConcurrentSessionTest, FullInboxShedsObservationsNotAnswers) {
  DataGraph g = MakeFigure3Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  options.inbox_capacity = 0;  // Every observation is shed immediately.
  ConcurrentSession session(g, options);
  PathExpression p = Q(g, "//r/a/b");
  std::vector<NodeId> expected = DataEvaluator(g).Evaluate(p);

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(session.Query(p).answer, expected);  // Still exact.
  }
  session.DrainRefinements();  // Nothing submitted, returns immediately.
  EXPECT_EQ(session.observations_pending(), 0u);
  EXPECT_EQ(session.refinements_applied(), 0u);
  EXPECT_EQ(session.index_publications(), 0u);
}

TEST(ConcurrentSessionTest, RefinementChurnsWhileReadersRun) {
  // refine_after = 1 publishes on (nearly) every distinct query, so
  // readers race many epoch bumps; answers must stay exact throughout.
  DataGraph g = MakeFigure1Graph();
  std::vector<PathExpression> workload = Figure1Workload(g);
  std::vector<std::vector<NodeId>> expected;
  DataEvaluator eval(g);
  for (const PathExpression& q : workload) {
    expected.push_back(eval.Evaluate(q));
  }

  ConcurrentSessionOptions options;
  options.refine_after = 1;
  options.cache_capacity = 4;  // Tiny cache: exercise eviction + epochs.
  ConcurrentSession session(g, options);

  constexpr size_t kThreads = 4;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting offsets so threads disagree about what is hot.
      for (size_t i = 0; i < 3 * workload.size(); ++i) {
        size_t pos = (t + i) % workload.size();
        if (session.Query(workload[pos]).answer != expected[pos]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  session.DrainRefinements();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(session.index_publications(), 1u);
  EXPECT_EQ(session.index_epoch(), session.index_publications());
}

}  // namespace
}  // namespace mrx::server
