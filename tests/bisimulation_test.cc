#include <gtest/gtest.h>

#include "index/bisimulation.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;
using mrx::testing::ReferenceBisimilarity;

/// Checks that `part` equals the oracle k-bisimilarity relation exactly:
/// same block iff k-bisimilar.
::testing::AssertionResult MatchesOracle(const DataGraph& g,
                                         const BisimulationPartition& part,
                                         int k) {
  ReferenceBisimilarity ref(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      bool same_block = part.block_of[u] == part.block_of[v];
      bool bisimilar = ref.Bisimilar(u, v, k);
      if (same_block != bisimilar) {
        return ::testing::AssertionFailure()
               << "nodes " << u << "," << v << ": same_block=" << same_block
               << " but " << k << "-bisimilar=" << bisimilar;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(BisimulationTest, ZeroBisimulationIsLabelPartition) {
  DataGraph g = MakeFigure1Graph();
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  EXPECT_EQ(part.rounds, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(part.block_of[u] == part.block_of[v],
                g.label(u) == g.label(v));
    }
  }
}

TEST(BisimulationTest, MatchesOracleOnFigure1) {
  DataGraph g = MakeFigure1Graph();
  for (int k = 0; k <= 4; ++k) {
    EXPECT_TRUE(MatchesOracle(g, ComputeKBisimulation(g, k), k)) << "k=" << k;
  }
}

TEST(BisimulationTest, RefinementIsMonotone) {
  DataGraph g = MakeFigure1Graph();
  uint32_t prev = 0;
  for (int k = 0; k <= 6; ++k) {
    BisimulationPartition part = ComputeKBisimulation(g, k);
    EXPECT_GE(part.num_blocks, prev) << "k=" << k;
    prev = part.num_blocks;
  }
}

TEST(BisimulationTest, KPlusOneRefinesK) {
  // Property 5 of the A(k)-index (§2): (k+1)-bisimulation refines k.
  DataGraph g = RandomGraph(21, 60, 5, 30);
  for (int k = 0; k < 4; ++k) {
    BisimulationPartition coarse = ComputeKBisimulation(g, k);
    BisimulationPartition fine = ComputeKBisimulation(g, k + 1);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (fine.block_of[u] == fine.block_of[v]) {
          EXPECT_EQ(coarse.block_of[u], coarse.block_of[v]);
        }
      }
    }
  }
}

TEST(BisimulationTest, FixpointIsFullBisimulation) {
  DataGraph g = MakeGraph({"r", "a", "b", "c", "c", "d", "d"},
                          {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}});
  BisimulationPartition part = ComputeKBisimulation(g, -1);
  EXPECT_TRUE(part.reached_fixpoint);
  // Figure 2's insight: the two d nodes have distinct incoming label path
  // *sets* only through their c parents; here c3 (parent a) and c4
  // (parent b) are not bisimilar, so d5 and d6 are not either.
  EXPECT_NE(part.block_of[5], part.block_of[6]);
  EXPECT_NE(part.block_of[3], part.block_of[4]);
}

TEST(BisimulationTest, FixpointStopsEarly) {
  DataGraph g = MakeGraph({"r", "a", "a"}, {{0, 1}, {0, 2}});
  BisimulationPartition part = ComputeKBisimulation(g, 100);
  // a-nodes are fully bisimilar; one round suffices to see the fixpoint.
  EXPECT_TRUE(part.reached_fixpoint);
  EXPECT_LE(part.rounds, 1);
  EXPECT_EQ(part.block_of[1], part.block_of[2]);
}

TEST(BisimulationTest, CyclicGraphTerminates) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}, {2, 1}});
  BisimulationPartition part = ComputeKBisimulation(g, -1);
  EXPECT_TRUE(part.reached_fixpoint);
  EXPECT_EQ(part.num_blocks, 3u);
}

class BisimulationRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BisimulationRandomTest, MatchesOracleAtEveryK) {
  DataGraph g = RandomGraph(GetParam(), 40, 4, 25);
  for (int k = 0; k <= 3; ++k) {
    ASSERT_TRUE(MatchesOracle(g, ComputeKBisimulation(g, k), k))
        << "seed=" << GetParam() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisimulationRandomTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(DkPartitionTest, UniformRequirementMatchesAk) {
  DataGraph g = RandomGraph(33, 50, 4, 20);
  std::vector<int32_t> kreq(g.symbols().size(), 2);
  BisimulationPartition dk = ComputeDkConstructPartition(g, kreq);
  BisimulationPartition ak = ComputeKBisimulation(g, 2);
  EXPECT_EQ(dk.num_blocks, ak.num_blocks);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(dk.block_of[u] == dk.block_of[v],
                ak.block_of[u] == ak.block_of[v]);
    }
  }
}

TEST(DkPartitionTest, FrozenLabelsStayCoarse) {
  // r -> a -> b and r -> a' -> b' with distinguishable a's; only label b
  // requires similarity, label a requires 1 by the D(k) constraint.
  DataGraph g = MakeGraph({"r", "q", "a", "a", "b", "b"},
                          {{0, 2}, {0, 1}, {1, 3}, {2, 4}, {3, 5}});
  std::vector<int32_t> kreq(g.symbols().size(), 0);
  kreq[*g.symbols().Lookup("b")] = 2;
  kreq[*g.symbols().Lookup("a")] = 1;
  BisimulationPartition part = ComputeDkConstructPartition(g, kreq);
  // b nodes split (their a parents differ at level 1)...
  EXPECT_NE(part.block_of[4], part.block_of[5]);
  // ...while r and q blocks are just the label blocks (requirement 0).
  mrx::testing::ReferenceBisimilarity ref(g);
  EXPECT_NE(part.block_of[2], part.block_of[3]);  // a's required k=1...
  // a2 (parent r) and a3 (parent q) differ already at k=1.
  EXPECT_FALSE(ref.Bisimilar(2, 3, 1));
}

TEST(DkPartitionTest, ExtentsMeetPerLabelRequirement) {
  DataGraph g = RandomGraph(55, 60, 5, 25);
  std::vector<int32_t> kreq(g.symbols().size());
  for (size_t l = 0; l < kreq.size(); ++l) {
    kreq[l] = static_cast<int32_t>(l % 3);
  }
  // Enforce the D(k) constraint at label level first.
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.children(u)) {
        if (kreq[g.label(u)] < kreq[g.label(v)] - 1) {
          kreq[g.label(u)] = kreq[g.label(v)] - 1;
          changed = true;
        }
      }
    }
  }
  BisimulationPartition part = ComputeDkConstructPartition(g, kreq);
  ReferenceBisimilarity ref(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (part.block_of[u] == part.block_of[v]) {
        ASSERT_TRUE(ref.Bisimilar(u, v, kreq[g.label(u)]))
            << u << " vs " << v;
      }
    }
  }
}

}  // namespace
}  // namespace mrx
