#ifndef MRX_TESTS_TEST_UTIL_H_
#define MRX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "graph/data_graph.h"
#include "index/index_graph.h"
#include "util/rng.h"

namespace mrx::testing {

/// Builds a graph from per-node labels and an edge list; node ids are the
/// positions in `labels`; node 0 is the root.
inline DataGraph MakeGraph(const std::vector<std::string>& labels,
                           const std::vector<std::pair<NodeId, NodeId>>& edges) {
  DataGraphBuilder builder;
  for (const std::string& label : labels) builder.AddNode(label);
  for (auto [u, v] : edges) builder.AddEdge(u, v);
  builder.SetRoot(0);
  auto result = std::move(builder).Build();
  return std::move(result).value();
}

/// The paper's Figure 3 data graph (as reconstructed in the tests for the
/// M(k)-vs-D(k) refinement contrast): r with children a, c, d; one b under
/// a (the r/a/b target), two under c, three under d.
///   0:r -> 1:a, 2:c, 3:d;  1:a -> 4:b;  2:c -> 5:b, 6:b;
///   3:d -> 7:b, 8:b, 9:b
inline DataGraph MakeFigure3Graph() {
  return MakeGraph({"r", "a", "c", "d", "b", "b", "b", "b", "b", "b"},
                   {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 5}, {2, 6},
                    {3, 7}, {3, 8}, {3, 9}});
}

/// A graph engineered for the Figure 4 "overqualified parents" scenario:
/// two b nodes that are 1-bisimilar but not 2-bisimilar (their a parents
/// hang under differently-labeled grandparents), each with one c child.
/// The c children (5, 6) are 1-bisimilar and must stay together under a
/// correct //b/c refinement.
///   0:r -> 1:a, 7:q;  7:q -> 2:a;  1:a -> 3:b;  2:a -> 4:b;
///   3:b -> 5:c;  4:b -> 6:c
inline DataGraph MakeOverqualifiedGraph() {
  return MakeGraph({"r", "a", "a", "b", "b", "c", "c", "q"},
                   {{0, 1}, {0, 7}, {7, 2}, {1, 3}, {2, 4}, {3, 5},
                    {4, 6}});
}

/// The paper's Figure 1 auction-site toy graph (labels and the documented
/// target sets; reference edges dashed in the figure are plain directed
/// edges here, as in the paper's model).
inline DataGraph MakeFigure1Graph() {
  DataGraphBuilder b;
  const char* labels[] = {"root",   "site",   "regions", "people",
                          "auctions", "africa", "asia",   "person",
                          "person", "person", "auction", "auction",
                          "item",   "item",   "item",    "seller",
                          "bidder", "bidder", "seller",  "item",
                          "item"};
  for (const char* l : labels) b.AddNode(l);
  const std::pair<NodeId, NodeId> regular[] = {
      {0, 1},  {1, 2},  {1, 3},  {1, 4},  {2, 5},  {2, 6},  {3, 7},
      {3, 8},  {3, 9},  {4, 10}, {4, 11}, {5, 12}, {6, 13}, {6, 14},
      {10, 15}, {10, 16}, {10, 19}, {11, 17}, {11, 18}, {11, 20}};
  for (auto [u, v] : regular) b.AddEdge(u, v);
  const std::pair<NodeId, NodeId> references[] = {
      {15, 7}, {16, 8}, {17, 8}, {18, 9}, {19, 12}, {20, 13}};
  for (auto [u, v] : references) b.AddEdge(u, v, EdgeKind::kReference);
  b.SetRoot(0);
  return std::move(std::move(b).Build()).value();
}

/// Reference (oracle) k-bisimilarity check, straight from Definition 2,
/// memoized pairwise. Exponential-ish, for small test graphs only.
class ReferenceBisimilarity {
 public:
  explicit ReferenceBisimilarity(const DataGraph& g) : g_(g) {}

  bool Bisimilar(NodeId u, NodeId v, int k) {
    if (g_.label(u) != g_.label(v)) return false;
    if (k <= 0) return true;
    if (u == v) return true;
    auto key = std::make_tuple(std::min(u, v), std::max(u, v), k);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    memo_[key] = true;  // Coinductive default for cycles.
    bool ok = MatchParents(u, v, k) && MatchParents(v, u, k);
    memo_[key] = ok;
    return ok;
  }

 private:
  bool MatchParents(NodeId u, NodeId v, int k) {
    for (NodeId up : g_.parents(u)) {
      bool matched = false;
      for (NodeId vp : g_.parents(v)) {
        if (Bisimilar(up, vp, k - 1)) {
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    return true;
  }

  const DataGraph& g_;
  std::map<std::tuple<NodeId, NodeId, int>, bool> memo_;
};

/// Random rooted digraph: a tree backbone over `num_nodes` nodes plus
/// `extra_edges` arbitrary edges (cycles and multi-parents allowed), with
/// labels drawn from `num_labels` choices. Deterministic in `seed`.
inline DataGraph RandomGraph(uint64_t seed, size_t num_nodes,
                             size_t num_labels, size_t extra_edges) {
  Rng rng(seed);
  DataGraphBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    builder.AddNode("l" + std::to_string(rng.Below(num_labels)));
  }
  for (NodeId v = 1; v < num_nodes; ++v) {
    builder.AddEdge(static_cast<NodeId>(rng.Below(v)), v);
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.Below(num_nodes));
    NodeId v = static_cast<NodeId>(rng.Below(num_nodes));
    builder.AddEdge(u, v, rng.Chance(0.5) ? EdgeKind::kReference
                                          : EdgeKind::kRegular);
  }
  builder.SetRoot(0);
  return std::move(std::move(builder).Build()).value();
}

/// Verifies that every alive index node's extent is k-bisimilar for its
/// recorded k (the paper's Property 1), against the oracle.
inline ::testing::AssertionResult ExtentsAreKBisimilar(
    const IndexGraph& ig, int32_t k_cap = 64) {
  ReferenceBisimilarity ref(ig.data());
  for (IndexNodeId v = 0; v < ig.capacity(); ++v) {
    if (!ig.alive(v)) continue;
    const auto& node = ig.node(v);
    int32_t k = std::min(node.k, k_cap);
    const std::vector<NodeId> extent = node.extent.Materialize();
    for (size_t i = 1; i < extent.size(); ++i) {
      if (!ref.Bisimilar(extent[0], extent[i], k)) {
        return ::testing::AssertionFailure()
               << "index node " << v << " (k=" << node.k << ") holds "
               << extent[0] << " and " << extent[i]
               << " which are not " << k << "-bisimilar";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Verifies the paper's Property 3: parent.k >= child.k - 1.
inline ::testing::AssertionResult SatisfiesProperty3(const IndexGraph& ig) {
  for (IndexNodeId v = 0; v < ig.capacity(); ++v) {
    if (!ig.alive(v)) continue;
    for (IndexNodeId c : ig.node(v).children) {
      if (ig.node(v).k < ig.node(c).k - 1) {
        return ::testing::AssertionFailure()
               << "edge " << v << " (k=" << ig.node(v).k << ") -> " << c
               << " (k=" << ig.node(c).k << ") violates Property 3";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace mrx::testing

#endif  // MRX_TESTS_TEST_UTIL_H_
