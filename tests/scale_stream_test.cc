// Scale tier, generation side (docs/PERFORMANCE.md "Scale tier"):
//
//  - the streamed direct-to-graph path (DocumentSink -> DirectGraphSink ->
//    StreamingCsrBuilder) must produce a graph BYTE-IDENTICAL to
//    generate-string -> parse on the same generator options and seed, for
//    both generators (XMark and DTD-random) across scales;
//  - streamed generation must be memory-bounded: the transient emission
//    state stays O(depth), never O(document), so multi-million-node graphs
//    generate in graph-sized memory;
//  - XMarkOptions::Scaled must stay well-defined at extreme scales.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "datagen/graph_sink.h"
#include "datagen/xmark.h"
#include "harness/datasets.h"
#include "xml/graph_builder.h"

namespace mrx {
namespace {

/// Full structural equality: ids, labels, adjacency, kinds, symbols.
/// Byte-identity of the two construction paths, not just isomorphism.
void ExpectSameGraph(const DataGraph& a, const DataGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.root(), b.root());
  ASSERT_EQ(a.num_reference_edges(), b.num_reference_edges());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    ASSERT_EQ(a.label_name(n), b.label_name(n)) << "node " << n;
    const auto ac = a.children(n), bc = b.children(n);
    ASSERT_TRUE(std::equal(ac.begin(), ac.end(), bc.begin(), bc.end()))
        << "children of node " << n;
    const auto ak = a.child_kinds(n), bk = b.child_kinds(n);
    ASSERT_TRUE(std::equal(ak.begin(), ak.end(), bk.begin(), bk.end()))
        << "child kinds of node " << n;
    const auto ap = a.parents(n), bp = b.parents(n);
    ASSERT_TRUE(std::equal(ap.begin(), ap.end(), bp.begin(), bp.end()))
        << "parents of node " << n;
  }
}

TEST(ScaleStreamTest, XMarkStreamedGraphIdenticalToParsePath) {
  for (double scale : {0.1, 0.5, 1.0}) {
    SCOPED_TRACE("scale=" + std::to_string(scale));
    auto streamed = harness::BuildXMarkGraphStreamed(scale);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    auto parsed = harness::BuildXMarkGraph(scale);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectSameGraph(*parsed, *streamed);
  }
}

TEST(ScaleStreamTest, DtdRandomStreamedGraphIdenticalToParsePath) {
  for (size_t target : {6000u, 30000u, 60000u}) {
    SCOPED_TRACE("target=" + std::to_string(target));
    auto streamed = harness::BuildDtdRandomGraphStreamed(target);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    auto parsed = harness::BuildDtdRandomGraph(target);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectSameGraph(*parsed, *streamed);
  }
}

TEST(ScaleStreamTest, NasaStreamedGraphIdenticalToParsePath) {
  auto streamed = harness::BuildNasaGraphStreamed(0.2);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  auto parsed = harness::BuildNasaGraph(0.2);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectSameGraph(*parsed, *streamed);
}

TEST(ScaleStreamTest, TextSinkReproducesStringGenerators) {
  // The event stream through an XmlTextSink is the string generator,
  // byte for byte — the oracle the graph path's equivalence rests on.
  const datagen::XMarkOptions options = datagen::XMarkOptions::Scaled(0.05);
  datagen::XmlTextSink sink;
  datagen::GenerateXMarkDocument(options, &sink);
  EXPECT_EQ(std::move(sink).TakeDocument(),
            datagen::GenerateXMarkDocument(options));

  auto dtd = datagen::Dtd::Parse(harness::BenchCatalogDtd());
  ASSERT_TRUE(dtd.ok());
  datagen::DtdGeneratorOptions dtd_options;
  dtd_options.seed = 99;
  dtd_options.min_elements = 5000;
  dtd_options.max_elements = 10000;
  datagen::XmlTextSink dtd_sink;
  ASSERT_TRUE(datagen::GenerateDocument(*dtd, dtd_options, &dtd_sink).ok());
  auto doc = datagen::GenerateDocument(*dtd, dtd_options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(std::move(dtd_sink).TakeDocument(), *doc);
}

TEST(ScaleStreamTest, StreamedGenerationIsMemoryBoundedAtMillionNodes) {
  // Scale 9 targets > 1M element nodes. The serialized document would be
  // hundreds of MB; the sink's transient emission state (the open-element
  // stack) must stay O(depth) — bytes, not megabytes.
  datagen::DirectGraphSink sink;
  datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(9.0), &sink);
  EXPECT_GE(sink.num_nodes(), 1000000u);
  EXPECT_LT(sink.peak_transient_bytes(), 4096u);
  // Pending references are graph-proportional (one entry per reference
  // attribute), far below document-proportional.
  EXPECT_LT(sink.pending_ref_bytes(), sink.num_nodes() * 32);
  auto graph = std::move(sink).Finish();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_GE(graph->num_nodes(), 1000000u);
  EXPECT_GT(graph->num_reference_edges(), 0u);
}

TEST(ScaleStreamTest, ScaledIsWellDefinedAtExtremeScales) {
  // Entity counts stay in [1, 2^31] for any double input (satellite of the
  // scale tier: size_t overflow / NaN casts were UB before).
  const double extremes[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             1e30,
                             -5.0,
                             0.0,
                             1e-30};
  constexpr double kMaxEntities = 2147483648.0;  // 2^31.
  for (double scale : extremes) {
    SCOPED_TRACE("scale=" + std::to_string(scale));
    const datagen::XMarkOptions o = datagen::XMarkOptions::Scaled(scale);
    for (size_t count : {o.num_categories, o.num_items, o.num_persons,
                         o.num_open_auctions, o.num_closed_auctions,
                         o.catgraph_edges}) {
      EXPECT_GE(count, 1u);
      EXPECT_LE(static_cast<double>(count), kMaxEntities);
    }
    for (double mean :
         {o.mean_bidders_per_auction, o.mean_incategory_per_item,
          o.mean_mails_per_item, o.mean_watches_per_person}) {
      EXPECT_TRUE(std::isfinite(mean));
      EXPECT_GE(mean, 0.0);
      EXPECT_LE(mean, 64.0);
    }
  }
  // Extreme-but-valid scales still generate (tiny end).
  auto tiny = harness::BuildXMarkGraphStreamed(1e-12);
  ASSERT_TRUE(tiny.ok()) << tiny.status();
  EXPECT_GT(tiny->num_nodes(), 0u);
}

}  // namespace
}  // namespace mrx
