#include <gtest/gtest.h>

#include <sstream>

#include "harness/datasets.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx::harness {
namespace {

std::vector<PathExpression> SmallWorkload(const DataGraph& g, size_t count,
                                          size_t max_len) {
  LabelPathEnumerationOptions enum_options;
  enum_options.max_length = max_len;
  LabelPathSet paths = EnumerateLabelPaths(g, enum_options);
  WorkloadOptions options;
  options.num_queries = count;
  options.max_query_length = max_len;
  options.seed = 4;
  return GenerateWorkload(paths, options);
}

TEST(DatasetsTest, XMarkGraphBuilds) {
  auto g = BuildXMarkGraph(/*scale=*/0.02);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_GT(g->num_nodes(), 500u);
  EXPECT_GT(g->num_reference_edges(), 10u);
}

TEST(DatasetsTest, NasaGraphBuilds) {
  auto g = BuildNasaGraph(/*scale=*/0.02);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_GT(g->num_nodes(), 500u);
  EXPECT_GT(g->num_reference_edges(), 10u);
}

TEST(DatasetsTest, BenchScaleFromEnvParses) {
  unsetenv("MRX_SCALE");
  EXPECT_EQ(BenchScaleFromEnv(0.5), 0.5);
  setenv("MRX_SCALE", "0.25", 1);
  EXPECT_EQ(BenchScaleFromEnv(0.5), 0.25);
  setenv("MRX_SCALE", "garbage", 1);
  EXPECT_EQ(BenchScaleFromEnv(0.5), 0.5);
  setenv("MRX_SCALE", "-1", 1);
  EXPECT_EQ(BenchScaleFromEnv(0.5), 0.5);
  unsetenv("MRX_SCALE");
}

TEST(ExperimentDriverTest, EndToEndSmallXMark) {
  auto g = BuildXMarkGraph(0.01);
  ASSERT_TRUE(g.ok()) << g.status();
  ExperimentDriver driver(*g, SmallWorkload(*g, 30, 4));

  IndexRunResult a0 = driver.RunAk(0);
  IndexRunResult a2 = driver.RunAk(2);
  IndexRunResult dkc = driver.RunDkConstruct();
  IndexRunResult dkp = driver.RunDkPromote(10);
  IndexRunResult mk = driver.RunMk(10);
  IndexRunResult mstar = driver.RunMStar(10);

  // Static index growth with k.
  EXPECT_LT(a0.nodes, a2.nodes);
  // A(0) pays heavy validation; refined adaptive indexes pay none.
  EXPECT_GT(a0.avg_validation_cost, 0.0);
  EXPECT_EQ(dkp.avg_validation_cost, 0.0);
  EXPECT_EQ(mk.avg_validation_cost, 0.0);
  EXPECT_EQ(mstar.avg_validation_cost, 0.0);
  EXPECT_EQ(dkc.avg_validation_cost, 0.0);
  // Adaptive indexes produced growth series (3 samples for 30 queries).
  EXPECT_EQ(dkp.growth.size(), 3u);
  EXPECT_EQ(mk.growth.size(), 3u);
  EXPECT_EQ(mstar.growth.size(), 3u);
  EXPECT_EQ(mk.growth.back().queries_processed, 30u);
  // Growth series are monotone in nodes.
  for (size_t i = 1; i < mk.growth.size(); ++i) {
    EXPECT_GE(mk.growth[i].nodes, mk.growth[i - 1].nodes);
  }
  // At this toy scale nearly every node is touched by some FUP, so the
  // M(k)-vs-D(k) size gap is within noise; just sanity-bound it (the
  // full-scale benches show the paper's gap).
  EXPECT_LE(mk.nodes, dkp.nodes + dkp.nodes / 5);
  EXPECT_GT(mstar.avg_query_cost, 0.0);
}

TEST(ExperimentDriverTest, MStarStrategiesBothWork) {
  auto g = BuildXMarkGraph(0.01);
  ASSERT_TRUE(g.ok());
  ExperimentDriver driver(*g, SmallWorkload(*g, 15, 4));
  IndexRunResult topdown = driver.RunMStar(50, MStarStrategy::kTopDown);
  IndexRunResult naive = driver.RunMStar(50, MStarStrategy::kNaive);
  EXPECT_EQ(topdown.nodes, naive.nodes);
  EXPECT_GT(topdown.avg_query_cost, 0.0);
  EXPECT_GT(naive.avg_query_cost, 0.0);
}

TEST(ReportTest, TablesRenderWithoutCrashing) {
  auto g = BuildXMarkGraph(0.01);
  ASSERT_TRUE(g.ok());
  ExperimentDriver driver(*g, SmallWorkload(*g, 10, 4));
  std::vector<IndexRunResult> runs = {driver.RunAk(0), driver.RunMk(5)};
  std::ostringstream os;
  PrintDatasetSummary(os, "xmark", *g);
  PrintCostVsSize(os, "figure", runs);
  PrintGrowth(os, "growth", {runs[1]});
  PrintHistogram(os, "hist", {0.5, 0.3, 0.2});
  std::string out = os.str();
  EXPECT_NE(out.find("A(0)"), std::string::npos);
  EXPECT_NE(out.find("M(k)"), std::string::npos);
  EXPECT_NE(out.find("avg_cost"), std::string::npos);
  EXPECT_NE(out.find("query_length"), std::string::npos);
}

}  // namespace
}  // namespace mrx::harness
