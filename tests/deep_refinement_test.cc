// Heavier property tests: long FUPs (length up to 7) drive deep component
// hierarchies and deep REFINENODE recursion; precision boundaries of the
// A(k) family; and refinement-order robustness of the adaptive indexes.

#include <gtest/gtest.h>

#include <algorithm>

#include "index/a_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx {
namespace {

using mrx::testing::RandomGraph;

std::vector<PathExpression> LongWorkload(const DataGraph& g, uint64_t seed,
                                         size_t count, size_t min_len,
                                         size_t max_len) {
  LabelPathEnumerationOptions eo;
  eo.max_length = max_len + 1;
  eo.max_paths = 20000;
  LabelPathSet paths = EnumerateLabelPaths(g, eo);
  WorkloadOptions wo;
  wo.num_queries = count * 6;  // Oversample, then filter by length.
  wo.max_query_length = max_len;
  wo.seed = seed;
  std::vector<PathExpression> all = GenerateWorkload(paths, wo);
  std::vector<PathExpression> out;
  for (auto& q : all) {
    if (q.length() >= min_len && out.size() < count) {
      out.push_back(std::move(q));
    }
  }
  return out;
}

TEST(DeepRefinementTest, MkHandlesLongFups) {
  DataGraph g = RandomGraph(301, 70, 3, 40);
  DataEvaluator eval(g);
  auto fups = LongWorkload(g, 7, 6, 5, 7);
  if (fups.empty()) GTEST_SKIP() << "graph has no long label paths";

  MkIndex index(g);
  for (const auto& q : fups) {
    index.Refine(q);
    ASSERT_TRUE(index.graph().CheckConsistency().ok());
    ASSERT_TRUE(mrx::testing::SatisfiesProperty3(index.graph()));
  }
  for (const auto& q : fups) {
    QueryResult r = index.Query(q);
    ASSERT_TRUE(r.precise) << q.ToString(g.symbols());
    ASSERT_EQ(r.answer, eval.Evaluate(q));
  }
}

TEST(DeepRefinementTest, MStarHandlesLongFups) {
  DataGraph g = RandomGraph(303, 70, 3, 40);
  DataEvaluator eval(g);
  auto fups = LongWorkload(g, 11, 5, 5, 7);
  if (fups.empty()) GTEST_SKIP() << "graph has no long label paths";

  MStarIndex index(g);
  for (const auto& q : fups) {
    index.Refine(q);
    ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  }
  size_t max_len = 0;
  for (const auto& q : fups) max_len = std::max(max_len, q.length());
  EXPECT_EQ(index.num_components(), max_len + 1);
  for (const auto& q : fups) {
    ASSERT_EQ(index.QueryTopDown(q).answer, eval.Evaluate(q));
    ASSERT_TRUE(index.QueryNaive(q).precise) << q.ToString(g.symbols());
    ASSERT_EQ(index.QueryBottomUp(q).answer, eval.Evaluate(q));
  }
}

TEST(DeepRefinementTest, RefinementOrderDoesNotAffectSupport) {
  DataGraph g = RandomGraph(307, 50, 4, 25);
  DataEvaluator eval(g);
  auto fups = LongWorkload(g, 13, 6, 2, 5);
  if (fups.size() < 3) GTEST_SKIP() << "not enough fups";

  MStarIndex forward(g);
  MStarIndex backward(g);
  for (const auto& q : fups) forward.Refine(q);
  for (auto it = fups.rbegin(); it != fups.rend(); ++it) {
    backward.Refine(*it);
  }
  ASSERT_TRUE(forward.CheckProperties().ok());
  ASSERT_TRUE(backward.CheckProperties().ok());
  for (const auto& q : fups) {
    EXPECT_TRUE(forward.QueryNaive(q).precise) << q.ToString(g.symbols());
    EXPECT_TRUE(backward.QueryNaive(q).precise) << q.ToString(g.symbols());
    EXPECT_EQ(forward.QueryTopDown(q).answer,
              backward.QueryTopDown(q).answer);
  }
}

class AkPrecisionBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(AkPrecisionBoundaryTest, PreciseExactlyUpToK) {
  const int k = GetParam();
  DataGraph g = RandomGraph(311, 60, 3, 30);
  DataEvaluator eval(g);
  AkIndex index(g, k);
  auto queries = LongWorkload(g, 17, 25, 0, 8);
  for (const auto& q : queries) {
    QueryResult r = index.Query(q);
    ASSERT_EQ(r.answer, eval.Evaluate(q));
    if (static_cast<int>(q.length()) <= k) {
      EXPECT_TRUE(r.precise)
          << "A(" << k << ") must be precise for length " << q.length();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, AkPrecisionBoundaryTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace mrx
