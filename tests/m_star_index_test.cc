#include <gtest/gtest.h>

#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::MakeOverqualifiedGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(MStarIndexTest, StartsWithSingleA0Component) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  EXPECT_EQ(index.num_components(), 1u);
  EXPECT_EQ(index.component(0).num_nodes(), 5u);
  EXPECT_TRUE(index.CheckProperties().ok());
}

TEST(MStarIndexTest, RefineCreatesComponentsUpToFupLength) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  EXPECT_EQ(index.num_components(), 3u);
  EXPECT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
}

TEST(MStarIndexTest, ComponentZeroStaysCoarse) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  // I0 keeps the label partition: multiresolution means the coarse view
  // survives refinement.
  EXPECT_EQ(index.component(0).num_nodes(), 5u);
}

TEST(MStarIndexTest, FinestComponentSupportsFup) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//r/a/b");
  index.Refine(p);
  for (QueryResult r : {index.QueryNaive(p), index.QueryTopDown(p)}) {
    EXPECT_TRUE(r.precise);
    EXPECT_EQ(r.stats.data_nodes_validated, 0u);
    EXPECT_EQ(r.answer, eval.Evaluate(p));
  }
}

TEST(MStarIndexTest, AvoidsOverqualifiedParentSplit) {
  // The §4 headline: where D(k)-promote and M(k) split the 1-bisimilar c
  // nodes (Figure 4), M*(k) keeps them together by consulting the
  // perfectly qualified parents in the previous component.
  DataGraph g = MakeOverqualifiedGraph();
  MStarIndex mstar(g);
  MkIndex mk(g);
  for (const char* fup : {"//r/a/b", "//b/c"}) {
    mstar.Refine(Q(g, fup));
    mk.Refine(Q(g, fup));
  }
  ASSERT_TRUE(mstar.CheckProperties().ok()) << mstar.CheckProperties();
  // M(k) over-refines...
  EXPECT_NE(mk.graph().index_of(5), mk.graph().index_of(6));
  // ...M*(k) does not: in the finest component holding //b/c's targets
  // (I1), nodes 5 and 6 share an index node with k = 1.
  const IndexGraph& i1 = mstar.component(1);
  EXPECT_EQ(i1.index_of(5), i1.index_of(6));
  EXPECT_EQ(i1.node(i1.index_of(5)).k, 1);
  // Both FUPs remain precise.
  DataEvaluator eval(g);
  for (const char* fup : {"//r/a/b", "//b/c"}) {
    QueryResult r = mstar.QueryTopDown(Q(g, fup));
    EXPECT_TRUE(r.precise) << fup;
    EXPECT_EQ(r.answer, eval.Evaluate(Q(g, fup)));
  }
}

TEST(MStarIndexTest, QueryStrategiesAgree) {
  DataGraph g = RandomGraph(81, 60, 4, 30);
  DataEvaluator eval(g);
  MStarIndex index(g);
  const SymbolTable& symbols = g.symbols();
  std::vector<PathExpression> fups;
  for (LabelId a = 0; a < symbols.size() && fups.size() < 4; ++a) {
    for (LabelId b = 0; b < symbols.size() && fups.size() < 4; ++b) {
      PathExpression p({a, b}, false);
      if (!eval.Evaluate(p).empty()) fups.push_back(p);
    }
  }
  for (const PathExpression& p : fups) index.Refine(p);
  ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  for (const PathExpression& p : fups) {
    std::vector<NodeId> expected = eval.Evaluate(p);
    EXPECT_EQ(index.QueryNaive(p).answer, expected);
    EXPECT_EQ(index.QueryTopDown(p).answer, expected);
    EXPECT_EQ(index.QueryWithPrefilter(p, 0, p.num_steps() - 1).answer,
              expected);
    EXPECT_EQ(index.QueryWithPrefilter(p, p.num_steps() - 1,
                                       p.num_steps() - 1)
                  .answer,
              expected);
  }
}

TEST(MStarIndexTest, UnrefinedQueriesAreExactViaValidation) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression p = Q(g, "//c/b");
  EXPECT_EQ(index.QueryNaive(p).answer, eval.Evaluate(p));
  EXPECT_EQ(index.QueryTopDown(p).answer, eval.Evaluate(p));
}

TEST(MStarIndexTest, PhysicalSizeSkipsDuplicates) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  // Before any refinement: only I0 counts.
  EXPECT_EQ(index.PhysicalNodeCount(), 5u);
  EXPECT_EQ(index.PhysicalEdgeCount(), 6u);
  index.Refine(Q(g, "//r/a/b"));
  // I1 and I2 only pay for nodes that actually split. The b node splits
  // into {4} and {5..9} (I1/I2 and the I2 copy of the split pieces are
  // duplicates of each other where extents are equal).
  size_t nodes = index.PhysicalNodeCount();
  EXPECT_LT(nodes, 5u + index.component(1).num_nodes() +
                       index.component(2).num_nodes());
  EXPECT_GE(nodes, 5u + 2u);  // At least the split pieces count once.
}

TEST(MStarIndexTest, GrowsMonotonicallyWithRefinement) {
  DataGraph g = RandomGraph(91, 60, 5, 30);
  DataEvaluator eval(g);
  MStarIndex index(g);
  size_t prev_nodes = index.PhysicalNodeCount();
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 5; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 5; ++b) {
      for (LabelId c = 0; c < symbols.size() && refined < 5; ++c) {
        PathExpression p({a, b, c}, false);
        if (eval.Evaluate(p).empty()) continue;
        index.Refine(p);
        ++refined;
        ASSERT_TRUE(index.CheckProperties().ok())
            << index.CheckProperties();
        size_t nodes = index.PhysicalNodeCount();
        EXPECT_GE(nodes, prev_nodes);
        prev_nodes = nodes;
      }
    }
  }
  EXPECT_GT(refined, 0);
}

TEST(MStarIndexTest, ComponentExtentsAreKBisimilar) {
  DataGraph g = RandomGraph(95, 50, 4, 25);
  DataEvaluator eval(g);
  MStarIndex index(g);
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 4; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 4; ++b) {
      PathExpression p({a, b}, false);
      if (eval.Evaluate(p).empty()) continue;
      index.Refine(p);
      ++refined;
    }
  }
  for (size_t i = 0; i < index.num_components(); ++i) {
    EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.component(i)))
        << "component " << i;
  }
}

TEST(MStarIndexTest, TopDownVisitsFewerNodesThanNaiveOnShortQueries) {
  // Refine with a long FUP so the finest component is much bigger than
  // I0/I1; then a short query should be cheaper top-down (it never has to
  // scan the finest component's full label row).
  DataGraph g = RandomGraph(99, 120, 4, 60);
  DataEvaluator eval(g);
  MStarIndex index(g);
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 3; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 3; ++b) {
      for (LabelId c = 0; c < symbols.size() && refined < 3; ++c) {
        for (LabelId d = 0; d < symbols.size() && refined < 3; ++d) {
          PathExpression p({a, b, c, d}, false);
          if (eval.Evaluate(p).empty()) continue;
          index.Refine(p);
          ++refined;
        }
      }
    }
  }
  ASSERT_GT(refined, 0);
  // Average over all single-label queries.
  uint64_t naive_cost = 0, topdown_cost = 0;
  for (LabelId l = 0; l < symbols.size(); ++l) {
    PathExpression p({l}, false);
    naive_cost += index.QueryNaive(p).stats.total();
    topdown_cost += index.QueryTopDown(p).stats.total();
    EXPECT_EQ(index.QueryNaive(p).answer, index.QueryTopDown(p).answer);
  }
  EXPECT_LE(topdown_cost, naive_cost);
}

TEST(MStarIndexTest, ZeroLengthFupNeedsNoComponents) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//b"));
  EXPECT_EQ(index.num_components(), 1u);
}

TEST(MStarIndexTest, SupernodeLinksAreConsistent) {
  DataGraph g = RandomGraph(103, 40, 4, 20);
  DataEvaluator eval(g);
  MStarIndex index(g);
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 3; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 3; ++b) {
      PathExpression p({a, b}, false);
      if (eval.Evaluate(p).empty()) continue;
      index.Refine(p);
      ++refined;
    }
  }
  for (size_t i = 1; i < index.num_components(); ++i) {
    const IndexGraph& comp = index.component(i);
    const IndexGraph& prev = index.component(i - 1);
    for (IndexNodeId v = 0; v < comp.capacity(); ++v) {
      if (!comp.alive(v)) continue;
      IndexNodeId sup = index.supernode(i, v);
      ASSERT_NE(sup, kInvalidIndexNode);
      EXPECT_EQ(sup, prev.index_of(comp.node(v).extent.front()));
    }
  }
}

}  // namespace
}  // namespace mrx
