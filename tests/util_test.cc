#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

#include "util/latency_histogram.h"
#include "util/lru_cache.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace mrx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad tag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.ToString(), "ParseError: bad tag");
}

TEST(StatusTest, OkWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::OutOfRange("k");
  EXPECT_EQ(os.str(), "OutOfRange: k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MRX_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, OkStatusIsNormalizedToInternal) {
  Result<int> r{Status::Ok()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a//b", '/');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringUtilTest, SplitSkipEmptyDropsThem) {
  auto pieces = SplitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join(std::vector<std::string>{}, "/"), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("//a/b", "//"));
  EXPECT_FALSE(StartsWith("/", "//"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringUtilTest, XmlEscapeCoversAllFive) {
  EXPECT_EQ(XmlEscape("a<b>&'\""), "a&lt;b&gt;&amp;&apos;&quot;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(TableWriterTest, TextRendering) {
  TableWriter t({"name", "count"});
  t.AddRowValues("alpha", 10);
  t.AddRowValues("b", 2);
  std::ostringstream os;
  t.RenderText(os);
  std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, CsvEscaping) {
  TableWriter t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableWriterTest, FormatsDoublesWithTwoDecimals) {
  EXPECT_EQ(TableWriter::Format(3.14159), "3.14");
  EXPECT_EQ(TableWriter::Format(static_cast<int64_t>(-7)), "-7");
}

TEST(LruCacheTest, GetRefreshesRecencySoEvictionIsLruNotFifo) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // "a" becomes most recently used.
  cache.Put("c", 3);                   // Evicts "b" (LRU), not "a" (FIFO).
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(*cache.Get("c"), 3);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("a", 10);  // Overwrite also counts as a use.
  cache.Put("c", 3);   // So "b" is the eviction victim.
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 10);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<std::string, int> cache(0);
  cache.Put("a", 1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, PutReportsWhetherAnEntryWasEvicted) {
  LruCache<std::string, int> cache(2);
  EXPECT_FALSE(cache.Put("a", 1));  // Room available.
  EXPECT_FALSE(cache.Put("b", 2));
  EXPECT_FALSE(cache.Put("a", 10));  // Overwrite: no eviction.
  EXPECT_TRUE(cache.Put("c", 3));    // Full: "b" is dropped.
  EXPECT_EQ(cache.Get("b"), nullptr);
  LruCache<std::string, int> disabled(0);
  EXPECT_FALSE(disabled.Put("a", 1));  // No-op Put is not an eviction.
}

TEST(LruCacheTest, ClearEmptiesButKeepsCapacity) {
  LruCache<int, int> cache(3);
  for (int i = 0; i < 3; ++i) cache.Put(i, i);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 3u);
  cache.Put(7, 7);
  EXPECT_EQ(*cache.Get(7), 7);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v : {1u, 2u, 3u, 4u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  // Values below kSubBuckets land in identity buckets: exact quantiles.
  EXPECT_EQ(h.ValueAtPercentile(25), 1u);
  EXPECT_EQ(h.ValueAtPercentile(50), 2u);
  EXPECT_EQ(h.ValueAtPercentile(100), 4u);
}

TEST(LatencyHistogramTest, QuantileErrorIsBounded) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Bucket upper bounds over-approximate by at most one sub-bucket width
  // (1/8 of the value at this layout's granularity).
  uint64_t p50 = h.ValueAtPercentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 563u);
  uint64_t p99 = h.ValueAtPercentile(99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1114u);
  EXPECT_EQ(h.ValueAtPercentile(0), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogramTest, MergeAndResetCombineSamples) {
  LatencyHistogram a, b;
  a.Record(100);
  b.Record(1000);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 1001100u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_GE(a.ValueAtPercentile(100), 1000000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.ValueAtPercentile(50), 0u);
}

TEST(LatencyHistogramTest, EmptyHistogramReturnsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(0), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
  EXPECT_EQ(h.ValueAtPercentile(100), 0u);
}

TEST(LatencyHistogramTest, PercentileClampsOutOfRangeAndNaN) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.ValueAtPercentile(-50), h.ValueAtPercentile(0));
  EXPECT_EQ(h.ValueAtPercentile(250), h.ValueAtPercentile(100));
  // NaN comparisons are all false, so a NaN rank must route to the minimum
  // bucket, not to an unspecified one.
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.ValueAtPercentile(nan), h.ValueAtPercentile(0));
}

TEST(LatencyHistogramTest, ValuesNearUint64MaxDoNotOverflowBucketing) {
  LatencyHistogram h;
  const uint64_t huge = std::numeric_limits<uint64_t>::max();
  h.Record(huge);
  h.Record(huge - 1);
  h.Record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), huge);
  // The top bucket's upper bound is capped at max() rather than wrapping.
  EXPECT_EQ(h.ValueAtPercentile(100), huge);
  EXPECT_GE(h.ValueAtPercentile(99), huge / 2);
  EXPECT_EQ(h.ValueAtPercentile(0), 1u);
}

TEST(LatencyHistogramTest, MergePreservesQuantilesAcrossMagnitudes) {
  // Merge must be bucket-wise identical to recording the union directly.
  LatencyHistogram merged, direct, part;
  for (uint64_t v = 1; v <= 500; ++v) merged.Record(v);
  for (uint64_t v = 501; v <= 1000; ++v) part.Record(v);
  merged.Merge(part);
  for (uint64_t v = 1; v <= 1000; ++v) direct.Record(v);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.max(), direct.max());
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.ValueAtPercentile(p), direct.ValueAtPercentile(p)) << p;
  }
}

}  // namespace
}  // namespace mrx
