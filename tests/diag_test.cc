// Tests for the query-diagnostics layer (ISSUE 7): the QueryDiag EXPLAIN
// record, the per-thread flight recorder, the bounded slow-query log, the
// stall watchdog, and their integration with ConcurrentSession's
// slow-query capture path.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mrx.h"
#include "obs/flight_recorder.h"
#include "obs/query_cost.h"
#include "obs/query_diag.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/concurrent_session.h"
#include "tests/json_check.h"
#include "tests/test_util.h"

namespace mrx::obs {
namespace {

using mrx::testing::JsonValue;
using mrx::testing::MakeFigure1Graph;
using mrx::testing::ParseJson;

// --- QueryCostScope --------------------------------------------------------

TEST(QueryCostTest, HooksAreNoOpsWithoutAScope) {
  // Must not crash or leak state; there is no active collector.
  CountExtentScan(10);
  CountIntersect(5);
  CountDifference(5);
  CountValidationCheck();
  CountComponentTouched(3);
}

TEST(QueryCostTest, ScopeCollectsAndDecodesLevels) {
  QueryCostCounters c;
  {
    QueryCostScope scope(&c);
    CountExtentScan(10);
    CountIntersect(4);
    CountDifference(2);
    CountValidationCheck();
    CountValidationCheck();
    CountComponentTouched(0);
    CountComponentTouched(2);
    CountComponentTouched(40);  // Clamped into the top bit.
  }
  EXPECT_EQ(c.extent_elems_scanned, 16u);  // 10 + 4 + 2.
  EXPECT_EQ(c.extent_intersect_calls, 1u);
  EXPECT_EQ(c.extent_difference_calls, 1u);
  EXPECT_EQ(c.validation_checks, 2u);
  EXPECT_EQ(c.LevelsTouched(), (std::vector<uint32_t>{0, 2, 31}));
}

TEST(QueryCostTest, ScopesNestWithoutLeakingIntoTheOuter) {
  QueryCostCounters outer, inner;
  QueryCostScope outer_scope(&outer);
  CountExtentScan(1);
  {
    QueryCostScope inner_scope(&inner);
    CountExtentScan(100);
  }
  CountExtentScan(2);
  EXPECT_EQ(inner.extent_elems_scanned, 100u);
  EXPECT_EQ(outer.extent_elems_scanned, 3u);  // Inner counts not added.
}

// --- QueryDiag -------------------------------------------------------------

QueryDiag MakeSampleDiag() {
  QueryDiag d;
  d.query = "//item/name";
  d.trace_id = 42;
  d.epoch = 3;
  d.graph_version = 1;
  d.cache_hit = false;
  d.precise = false;
  d.strategy = "topdown";
  d.estimated_cost = 7.5;
  d.considered = {{"naive", 9, true, false},
                  {"topdown", 7.5, true, true},
                  {"bottomup", 12, false, false}};
  QueryCostCounters cost;
  cost.extent_elems_scanned = 130;
  cost.extent_intersect_calls = 2;
  cost.validation_checks = 4;
  cost.levels_touched_mask = 0b101;
  d.SetCost(cost);
  d.index_nodes_visited = 5;
  d.data_nodes_validated = 4;
  d.eval_ns = 1000;
  d.latency_ns = 1500;
  d.answer_size = 6;
  return d;
}

TEST(QueryDiagTest, JsonRenderingIsStrictAndComplete) {
  std::ostringstream os;
  MakeSampleDiag().WriteJson(os);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("query")->string_value, "//item/name");
  EXPECT_EQ(doc->Find("strategy")->string_value, "topdown");
  EXPECT_EQ(doc->Find("trace_id")->number_value, 42);
  EXPECT_DOUBLE_EQ(doc->Find("estimated_cost")->number_value, 7.5);
  const JsonValue* considered = doc->Find("considered");
  ASSERT_NE(considered, nullptr);
  ASSERT_EQ(considered->array.size(), 3u);
  EXPECT_TRUE(considered->array[1].Find("chosen")->bool_value);
  EXPECT_FALSE(considered->array[2].Find("eligible")->bool_value);
  const JsonValue* cost = doc->Find("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->Find("extent_elems_scanned")->number_value, 130);
  EXPECT_EQ(cost->Find("index_nodes_visited")->number_value, 5);
  const JsonValue* levels = doc->Find("levels_touched");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->array.size(), 2u);
  EXPECT_EQ(levels->array[0].number_value, 0);
  EXPECT_EQ(levels->array[1].number_value, 2);
}

TEST(QueryDiagTest, JsonEscapesQueryText) {
  QueryDiag d;
  d.query = "//a[\"x\\y\"]";
  std::ostringstream os;
  d.WriteJson(os);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  EXPECT_EQ(doc->Find("query")->string_value, "//a[\"x\\y\"]");
}

TEST(QueryDiagTest, TextRenderingShowsEstimateNextToActuals) {
  std::ostringstream os;
  MakeSampleDiag().WriteText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("strategy: topdown"), std::string::npos) << text;
  EXPECT_NE(text.find("estimated cost"), std::string::npos);
  EXPECT_NE(text.find("index_nodes_visited=5"), std::string::npos);
  EXPECT_NE(text.find("extent_elems_scanned=130"), std::string::npos);
  EXPECT_NE(text.find("chosen"), std::string::npos);
}

TEST(QueryDiagTest, SetCostCopiesEveryCounter) {
  QueryCostCounters cost;
  cost.extent_elems_scanned = 1;
  cost.extent_intersect_calls = 2;
  cost.extent_difference_calls = 3;
  cost.validation_checks = 4;
  cost.levels_touched_mask = 0b10;
  QueryDiag d;
  d.SetCost(cost);
  EXPECT_EQ(d.extent_elems_scanned, 1u);
  EXPECT_EQ(d.extent_intersect_calls, 2u);
  EXPECT_EQ(d.extent_difference_calls, 3u);
  EXPECT_EQ(d.validation_checks, 4u);
  EXPECT_EQ(d.levels_touched, (std::vector<uint32_t>{1}));
}

// --- FlightRecorder --------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndSnapshotsInTimestampOrder) {
  FlightRecorder recorder({.events_per_thread = 16});
  recorder.Record(FlightEventType::kQueryStart, 1, 2);
  recorder.Record(FlightEventType::kQueryPhase, 3, 4, 7);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(events[0].type,
            static_cast<uint16_t>(FlightEventType::kQueryStart));
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_EQ(events[1].code, 7u);
  EXPECT_EQ(recorder.total_recorded(), 2u);
  EXPECT_EQ(recorder.num_threads(), 1u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsNewest) {
  FlightRecorder recorder({.events_per_thread = 4});
  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.Record(FlightEventType::kQueryStart, i);
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4 of the 10 survive, in order.
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 7u + i);
  EXPECT_EQ(recorder.total_recorded(), 10u);
}

TEST(FlightRecorderTest, LastNKeepsOnlyTheNewest) {
  FlightRecorder recorder({.events_per_thread = 16});
  for (uint64_t i = 1; i <= 8; ++i) {
    recorder.Record(FlightEventType::kQueryStart, i);
  }
  std::vector<FlightEvent> events = recorder.Snapshot(/*last_n=*/3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].a, 6u);
  EXPECT_EQ(events[2].a, 8u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder recorder({.events_per_thread = 16});
  recorder.set_enabled(false);
  recorder.Record(FlightEventType::kQueryStart, 1);
  EXPECT_EQ(recorder.Snapshot().size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  recorder.set_enabled(true);
  recorder.Record(FlightEventType::kQueryStart, 2);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  FlightRecorder recorder({.events_per_thread = 16});
  recorder.Record(FlightEventType::kQueryStart, 1);
  std::thread other(
      [&] { recorder.Record(FlightEventType::kMutationApply, 2); });
  other.join();
  EXPECT_EQ(recorder.num_threads(), 2u);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::set<uint32_t> threads;
  for (const FlightEvent& e : events) threads.insert(e.thread);
  EXPECT_EQ(threads.size(), 2u);  // Distinct ordinals.
}

TEST(FlightRecorderTest, TypeNamesAreStable) {
  EXPECT_STREQ(FlightRecorder::TypeName(
                   static_cast<uint16_t>(FlightEventType::kQueryStart)),
               "query_start");
  EXPECT_STREQ(FlightRecorder::TypeName(
                   static_cast<uint16_t>(FlightEventType::kSlowQuery)),
               "slow_query");
  EXPECT_STREQ(FlightRecorder::TypeName(
                   static_cast<uint16_t>(FlightEventType::kWatchdogStall)),
               "watchdog_stall");
  // Unknown values must render, not crash (forward-compat dumps).
  EXPECT_NE(FlightRecorder::TypeName(999), nullptr);
}

TEST(FlightRecorderTest, DumpRawToWritesHeaderAndEventBytes) {
  FlightRecorder recorder({.events_per_thread = 8});
  recorder.Record(FlightEventType::kQueryStart, 11, 22);
  std::string path =
      (std::filesystem::temp_directory_path() / "mrx_flight_dump.bin")
          .string();
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  recorder.DumpRawTo(fd, /*signal_number=*/6);
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Text header carries the magic and signal, then raw 32-byte events.
  EXPECT_NE(blob.find("MRXFLIGHT1 sig=6"), std::string::npos);
  EXPECT_GE(blob.size(), sizeof(FlightEvent));
  std::remove(path.c_str());
}

// --- StallWatchdog ---------------------------------------------------------

TEST(StallWatchdogTest, ScopedActivityToleratesNull) {
  StallWatchdog::ScopedActivity scope(nullptr, 123);  // Must not crash.
}

TEST(StallWatchdogTest, FastActivityNeverStalls) {
  StallWatchdogOptions options;
  options.deadline_ms = 200;
  options.poll_interval_ms = 5;
  options.on_stall = [](const std::string&) {};
  StallWatchdog watchdog(options);
  StallWatchdog::Activity* activity = watchdog.RegisterActivity("fast");
  for (int i = 0; i < 10; ++i) {
    StallWatchdog::ScopedActivity scope(activity, MonotonicNowNs());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watchdog.stalls(), 0u);
}

TEST(StallWatchdogTest, OverdueActivityFiresOnStallOnce) {
  std::atomic<int> fired{0};
  std::string description;
  std::mutex mu;
  StallWatchdogOptions options;
  options.deadline_ms = 10;
  options.poll_interval_ms = 2;
  options.on_stall = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    ++fired;
    description = what;
  };
  StallWatchdog watchdog(options);
  StallWatchdog::Activity* activity = watchdog.RegisterActivity("refine");
  activity->Begin(MonotonicNowNs());
  // Busy past the deadline: the watchdog must flag it exactly once for
  // this Begin (not once per poll).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  activity->End();
  EXPECT_EQ(watchdog.stalls(), 1u);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_NE(description.find("refine"), std::string::npos) << description;
}

TEST(StallWatchdogTest, AgeProbeStallsWhileOverDeadline) {
  std::atomic<int> fired{0};
  StallWatchdogOptions options;
  options.deadline_ms = 5;
  options.poll_interval_ms = 2;
  options.on_stall = [&](const std::string&) { ++fired; };
  StallWatchdog watchdog(options);
  std::atomic<uint64_t> age_ns{0};
  uint64_t id = watchdog.RegisterProbe("queue", [&]() -> uint64_t {
    return age_ns.load(std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(watchdog.stalls(), 0u);  // Age zero: healthy.
  age_ns.store(1'000'000'000);       // 1 s >> 5 ms deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(watchdog.stalls(), 1u);
  watchdog.UnregisterProbe(id);
  const uint64_t after_unregister = watchdog.stalls();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(watchdog.stalls(), after_unregister);
}

// --- SlowQueryLog ----------------------------------------------------------

QueryDiag DiagNamed(const std::string& query, uint64_t trace_id = 0) {
  QueryDiag d;
  d.query = query;
  d.trace_id = trace_id;
  d.strategy = "naive";
  return d;
}

TEST(SlowQueryLogTest, BoundDropsOldestAndKeepsNewest) {
  SlowQueryLog log({.max_records = 3});
  for (int i = 0; i < 5; ++i) log.Append(DiagNamed("//q" + std::to_string(i)));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  std::ostringstream os;
  log.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> queries;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    queries.push_back(doc->Find("query")->string_value);
  }
  EXPECT_EQ(queries, (std::vector<std::string>{"//q2", "//q3", "//q4"}));
}

TEST(SlowQueryLogTest, TracksLastTraceIdAndGlobalCounter) {
  const uint64_t before =
      MetricsRegistry::Global().GetCounter("mrx_slow_queries_total")->Value();
  SlowQueryLog log;
  log.Append(DiagNamed("//a", 7));
  log.Append(DiagNamed("//b", 0));  // Untraced: exemplar keeps 7.
  log.Append(DiagNamed("//c", 9));
  EXPECT_EQ(log.last_trace_id(), 9u);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("mrx_slow_queries_total")->Value(),
      before + 3);
}

// --- ConcurrentSession integration -----------------------------------------

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(SessionDiagTest, QueryExplainedFillsTheRecord) {
  DataGraph g = MakeFigure1Graph();
  server::ConcurrentSessionOptions options;
  options.cache_results = false;  // Force evaluation, not a cache echo.
  server::ConcurrentSession session(g, options);
  QueryDiag diag;
  QueryResult result = session.QueryExplained(Q(g, "//person"), &diag);
  EXPECT_FALSE(result.answer.empty());
  EXPECT_EQ(diag.query, "//person");
  EXPECT_FALSE(diag.cache_hit);
  EXPECT_FALSE(diag.strategy.empty());
  EXPECT_EQ(diag.answer_size, result.answer.size());
  EXPECT_GT(diag.latency_ns, 0u);
  ASSERT_EQ(diag.considered.size(), 4u);
  int chosen = 0;
  for (const QueryDiag::Candidate& c : diag.considered) {
    if (c.chosen) {
      ++chosen;
      EXPECT_EQ(c.strategy, diag.strategy);
    }
  }
  EXPECT_EQ(chosen, 1);
  // The evaluation must have touched the index and scanned extents.
  EXPECT_GT(diag.index_nodes_visited + diag.extent_elems_scanned, 0u);
  EXPECT_FALSE(diag.levels_touched.empty());
}

TEST(SessionDiagTest, ZeroThresholdNeverCaptures) {
  DataGraph g = MakeFigure1Graph();
  SlowQueryLog log;
  server::ConcurrentSessionOptions options;
  options.slow_query_ns = 0;  // Capture disabled.
  options.slow_query_log = &log;
  server::ConcurrentSession session(g, options);
  session.Query(Q(g, "//person"));
  EXPECT_EQ(session.slow_queries(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(SessionDiagTest, TinyThresholdCapturesWithResolvableTraceId) {
  DataGraph g = MakeFigure1Graph();
  TraceRecorder tracer({.sample_every = 1000});  // Sampler nearly off: the
                                                 // forced slow-query traces
                                                 // must record regardless.
  SlowQueryLog log;
  server::ConcurrentSessionOptions options;
  options.slow_query_ns = 1;  // Every query is "slow".
  options.slow_query_log = &log;
  options.tracer = &tracer;
  server::ConcurrentSession session(g, options);
  session.Query(Q(g, "//person"));
  session.Query(Q(g, "//item"));
  EXPECT_EQ(session.slow_queries(), 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_NE(session.last_slow_trace_id(), 0u);
  EXPECT_EQ(log.last_trace_id(), session.last_slow_trace_id());

  // Every captured record's trace id must resolve to a span in the
  // recorder — the acceptance criterion's join.
  std::set<uint64_t> trace_ids;
  for (const SpanEvent& e : tracer.Events()) trace_ids.insert(e.trace_id);
  std::ostringstream os;
  log.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int records = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const uint64_t id =
        static_cast<uint64_t>(doc->Find("trace_id")->number_value);
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(trace_ids.count(id)) << "unresolved trace id " << id;
    ++records;
  }
  EXPECT_EQ(records, 2);
}

TEST(SessionDiagTest, WatchdogMonitorsRefinerWithoutFalseStalls) {
  DataGraph g = MakeFigure1Graph();
  StallWatchdogOptions wd_options;
  wd_options.deadline_ms = 5000;  // Generous: nothing should stall.
  wd_options.poll_interval_ms = 5;
  wd_options.on_stall = [](const std::string&) {};
  StallWatchdog watchdog(wd_options);
  {
    server::ConcurrentSessionOptions options;
    options.refine_after = 1;
    options.watchdog = &watchdog;
    server::ConcurrentSession session(g, options);
    for (int i = 0; i < 4; ++i) session.Query(Q(g, "//person"));
    session.DrainRefinements();
  }  // Session (and its activities' use) ends before the watchdog.
  EXPECT_EQ(watchdog.stalls(), 0u);
}

}  // namespace
}  // namespace mrx::obs
