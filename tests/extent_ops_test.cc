#include "index/extent_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/index_graph.h"
#include "util/rng.h"

namespace mrx {
namespace {

std::vector<NodeId> OracleIntersect(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<NodeId> OracleDifference(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// A sorted duplicate-free random set of `size` ids drawn from
/// [0, universe).
std::vector<NodeId> RandomSet(Rng* rng, size_t size, size_t universe) {
  std::vector<NodeId> v;
  for (size_t i = 0; i < size; ++i) {
    v.push_back(static_cast<NodeId>(rng->Below(universe)));
  }
  SortUnique(&v);
  return v;
}

TEST(ExtentOpsTest, EdgeCases) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> some = {1, 5, 9};
  EXPECT_TRUE(Intersect(empty, some).empty());
  EXPECT_TRUE(Intersect(some, empty).empty());
  EXPECT_EQ(Intersect(some, some), some);
  EXPECT_TRUE(Difference(empty, some).empty());
  EXPECT_EQ(Difference(some, empty), some);
  EXPECT_TRUE(Difference(some, some).empty());
}

TEST(ExtentOpsTest, DisjointSets) {
  const std::vector<NodeId> a = {1, 3, 5};
  const std::vector<NodeId> b = {2, 4, 6};
  EXPECT_TRUE(Intersect(a, b).empty());
  EXPECT_EQ(Difference(a, b), a);
}

TEST(ExtentOpsTest, MatchesOracleAcrossSkews) {
  // Size pairs straddling the galloping crossover in both directions,
  // including a tiny set against a huge one (the split relevance-filter
  // shape) and near-balanced inputs (the merge path).
  const std::pair<size_t, size_t> shapes[] = {
      {0, 100},  {1, 1},    {3, 2000}, {2000, 3},  {5, 50},
      {50, 5},   {100, 90}, {1, 5000}, {4000, 17}, {256, 256},
  };
  Rng rng(99);
  for (auto [na, nb] : shapes) {
    for (int rep = 0; rep < 20; ++rep) {
      const std::vector<NodeId> a = RandomSet(&rng, na, 8000);
      const std::vector<NodeId> b = RandomSet(&rng, nb, 8000);
      ASSERT_EQ(Intersect(a, b), OracleIntersect(a, b))
          << "|a|=" << a.size() << " |b|=" << b.size();
      ASSERT_EQ(Difference(a, b), OracleDifference(a, b))
          << "|a|=" << a.size() << " |b|=" << b.size();
    }
  }
}

TEST(ExtentOpsTest, GallopTailIsCopied) {
  // a extends past b's last element: DifferenceGallop's bulk tail copy
  // and IntersectGallop's early exit both trigger.
  std::vector<NodeId> a = {10, 20, 9000, 9001, 9002};
  std::vector<NodeId> b;
  for (NodeId i = 0; i < 200; ++i) b.push_back(i * 3);
  EXPECT_EQ(Intersect(a, b), OracleIntersect(a, b));
  EXPECT_EQ(Difference(a, b), OracleDifference(a, b));
}

TEST(ExtentOpsTest, SubsetContainment) {
  Rng rng(7);
  const std::vector<NodeId> big = RandomSet(&rng, 5000, 100000);
  std::vector<NodeId> small;
  for (size_t i = 0; i < big.size(); i += 97) small.push_back(big[i]);
  EXPECT_EQ(Intersect(small, big), small);
  EXPECT_TRUE(Difference(small, big).empty());
}

TEST(ExtentOpsTest, SortUniqueNormalizes) {
  std::vector<NodeId> v = {5, 1, 5, 3, 1, 1, 9};
  SortUnique(&v);
  EXPECT_EQ(v, (std::vector<NodeId>{1, 3, 5, 9}));

  std::vector<IndexNodeId> ids = {2, 2, 0};
  SortUnique(&ids);
  EXPECT_EQ(ids, (std::vector<IndexNodeId>{0, 2}));
}

}  // namespace
}  // namespace mrx
