#include "index/extent_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/extent.h"
#include "index/index_graph.h"
#include "util/rng.h"

namespace mrx {
namespace {

std::vector<NodeId> OracleIntersect(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<NodeId> OracleDifference(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// A sorted duplicate-free random set of `size` ids drawn from
/// [0, universe).
std::vector<NodeId> RandomSet(Rng* rng, size_t size, size_t universe) {
  std::vector<NodeId> v;
  for (size_t i = 0; i < size; ++i) {
    v.push_back(static_cast<NodeId>(rng->Below(universe)));
  }
  SortUnique(&v);
  return v;
}

TEST(ExtentOpsTest, EdgeCases) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> some = {1, 5, 9};
  EXPECT_TRUE(Intersect(empty, some).empty());
  EXPECT_TRUE(Intersect(some, empty).empty());
  EXPECT_EQ(Intersect(some, some), some);
  EXPECT_TRUE(Difference(empty, some).empty());
  EXPECT_EQ(Difference(some, empty), some);
  EXPECT_TRUE(Difference(some, some).empty());
}

TEST(ExtentOpsTest, DisjointSets) {
  const std::vector<NodeId> a = {1, 3, 5};
  const std::vector<NodeId> b = {2, 4, 6};
  EXPECT_TRUE(Intersect(a, b).empty());
  EXPECT_EQ(Difference(a, b), a);
}

TEST(ExtentOpsTest, MatchesOracleAcrossSkews) {
  // Size pairs straddling the galloping crossover in both directions,
  // including a tiny set against a huge one (the split relevance-filter
  // shape) and near-balanced inputs (the merge path).
  const std::pair<size_t, size_t> shapes[] = {
      {0, 100},  {1, 1},    {3, 2000}, {2000, 3},  {5, 50},
      {50, 5},   {100, 90}, {1, 5000}, {4000, 17}, {256, 256},
  };
  Rng rng(99);
  for (auto [na, nb] : shapes) {
    for (int rep = 0; rep < 20; ++rep) {
      const std::vector<NodeId> a = RandomSet(&rng, na, 8000);
      const std::vector<NodeId> b = RandomSet(&rng, nb, 8000);
      ASSERT_EQ(Intersect(a, b), OracleIntersect(a, b))
          << "|a|=" << a.size() << " |b|=" << b.size();
      ASSERT_EQ(Difference(a, b), OracleDifference(a, b))
          << "|a|=" << a.size() << " |b|=" << b.size();
    }
  }
}

TEST(ExtentOpsTest, GallopTailIsCopied) {
  // a extends past b's last element: DifferenceGallop's bulk tail copy
  // and IntersectGallop's early exit both trigger.
  std::vector<NodeId> a = {10, 20, 9000, 9001, 9002};
  std::vector<NodeId> b;
  for (NodeId i = 0; i < 200; ++i) b.push_back(i * 3);
  EXPECT_EQ(Intersect(a, b), OracleIntersect(a, b));
  EXPECT_EQ(Difference(a, b), OracleDifference(a, b));
}

TEST(ExtentOpsTest, SubsetContainment) {
  Rng rng(7);
  const std::vector<NodeId> big = RandomSet(&rng, 5000, 100000);
  std::vector<NodeId> small;
  for (size_t i = 0; i < big.size(); i += 97) small.push_back(big[i]);
  EXPECT_EQ(Intersect(small, big), small);
  EXPECT_TRUE(Difference(small, big).empty());
}

// ---- k-way intersection ---------------------------------------------------

constexpr ExtentRep kAllReps[] = {ExtentRep::kSortedVector,
                                  ExtentRep::kDeltaPacked,
                                  ExtentRep::kHybridBitmap};

TEST(IntersectManyTest, MatchesPairwiseFoldAcrossReps) {
  Rng rng(0x4411);
  for (int trial = 0; trial < 40; ++trial) {
    // Deliberately feed operands largest-first so the size ordering inside
    // IntersectMany has to reorder them to get the same answer.
    const std::vector<NodeId> a = RandomSet(&rng, 3000, 20000);
    const std::vector<NodeId> b = RandomSet(&rng, 500, 20000);
    const std::vector<NodeId> c = RandomSet(&rng, 40, 20000);
    const std::vector<NodeId> expected =
        OracleIntersect(OracleIntersect(a, b), c);

    const Extent ea =
        Extent::FromSortedAs(std::vector<NodeId>(a), kAllReps[trial % 3]);
    const Extent eb =
        Extent::FromSortedAs(std::vector<NodeId>(b), kAllReps[(trial + 1) % 3]);
    const Extent ec =
        Extent::FromSortedAs(std::vector<NodeId>(c), kAllReps[(trial + 2) % 3]);
    EXPECT_EQ(IntersectMany({&ea, &eb, &ec}).Materialize(), expected);

    // Vector flavor (the twig-query path) must agree.
    EXPECT_EQ(IntersectMany(std::vector<const std::vector<NodeId>*>{&a, &b,
                                                                    &c}),
              expected);
  }
}

TEST(IntersectManyTest, EdgeCases) {
  const std::vector<NodeId> some = {1, 5, 9};
  const std::vector<NodeId> empty;
  const Extent es = Extent::FromSorted({1, 5, 9});

  // No operands / all-null operands yield the empty set.
  EXPECT_TRUE(IntersectMany(std::vector<const Extent*>{}).empty());
  EXPECT_TRUE(
      IntersectMany(std::vector<const Extent*>{nullptr, nullptr}).empty());
  EXPECT_TRUE(
      IntersectMany(std::vector<const std::vector<NodeId>*>{}).empty());

  // Null operands are skipped, not treated as empty sets.
  EXPECT_EQ(IntersectMany({&es, nullptr, &es}).Materialize(), some);
  EXPECT_EQ(IntersectMany(
                std::vector<const std::vector<NodeId>*>{&some, nullptr}),
            some);

  // A single operand comes back unchanged; an empty operand wins outright.
  EXPECT_EQ(IntersectMany({&es}).Materialize(), some);
  const Extent ee = Extent::FromSorted({});
  EXPECT_TRUE(IntersectMany({&es, &ee, &es}).empty());
  EXPECT_TRUE(IntersectMany(std::vector<const std::vector<NodeId>*>{
                  &some, &empty, &some})
                  .empty());
}

// ---- Overlaps -------------------------------------------------------------

TEST(OverlapsTest, MatchesOracleAcrossRepPairs) {
  Rng rng(0x0ee1);
  for (int trial = 0; trial < 30; ++trial) {
    // Mix overlapping and disjoint ranges so both outcomes occur often.
    const size_t universe = 4000;
    const std::vector<NodeId> a = RandomSet(&rng, 1 + rng.Below(300), universe);
    std::vector<NodeId> b = RandomSet(&rng, 1 + rng.Below(300), universe);
    if (trial % 3 == 0 && !a.empty()) {
      // Force disjoint: shift b past a's maximum.
      for (NodeId& x : b) x += a.back() + 1;
    }
    const bool expected = !OracleIntersect(a, b).empty();
    EXPECT_EQ(Overlaps(a, b), expected);
    for (ExtentRep ra : kAllReps) {
      const Extent ea = Extent::FromSortedAs(std::vector<NodeId>(a), ra);
      EXPECT_TRUE(Overlaps(a, ea));  // A non-empty set overlaps itself.
      for (ExtentRep rb : kAllReps) {
        const Extent eb = Extent::FromSortedAs(std::vector<NodeId>(b), rb);
        EXPECT_EQ(Overlaps(ea, eb), expected)
            << "trial " << trial << " " << ExtentRepName(ra) << "x"
            << ExtentRepName(rb);
        EXPECT_EQ(Overlaps(a, eb), expected) << "vec x " << ExtentRepName(rb);
        EXPECT_EQ(Overlaps(ea, b), expected) << ExtentRepName(ra) << " x vec";
      }
    }
  }
}

TEST(OverlapsTest, RangePruneAndSharedPayload) {
  const Extent low = Extent::FromSorted({1, 2, 3});
  const Extent high = Extent::FromSorted({1000, 1001});
  EXPECT_FALSE(Overlaps(low, high));
  EXPECT_FALSE(Overlaps(high, low));
  const Extent alias = low;  // Shares the payload: identity fast path.
  EXPECT_TRUE(Overlaps(low, alias));
  EXPECT_FALSE(Overlaps(low, Extent::FromSorted({})));
}

// ---- Native delta-stream kernels ------------------------------------------

/// Sets shaped to exercise the block-skip index: dense runs separated by
/// gaps much larger than one 128-value delta block, so whole blocks are
/// skipped undecoded during intersection.
std::vector<NodeId> BlockySet(Rng* rng, size_t runs) {
  std::vector<NodeId> v;
  NodeId cursor = static_cast<NodeId>(rng->Below(1000));
  for (size_t r = 0; r < runs; ++r) {
    const size_t len = 200 + rng->Below(400);  // Spans several blocks.
    for (size_t i = 0; i < len; ++i) v.push_back(cursor++);
    cursor += 50000 + static_cast<NodeId>(rng->Below(100000));
  }
  return v;
}

TEST(DeltaNativeTest, BlockSkippingKernelsMatchOracle) {
  Rng rng(0xde17a);
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<NodeId> a = BlockySet(&rng, 2 + rng.Below(6));
    const std::vector<NodeId> b = BlockySet(&rng, 2 + rng.Below(6));
    const Extent da =
        Extent::FromSortedAs(std::vector<NodeId>(a), ExtentRep::kDeltaPacked);
    const Extent db =
        Extent::FromSortedAs(std::vector<NodeId>(b), ExtentRep::kDeltaPacked);
    const std::vector<NodeId> and_expected = OracleIntersect(a, b);
    const std::vector<NodeId> sub_expected = OracleDifference(a, b);

    // delta x delta.
    EXPECT_EQ(Intersect(da, db).Materialize(), and_expected) << trial;
    EXPECT_EQ(Difference(da, db).Materialize(), sub_expected) << trial;
    // delta x vector (both operand orders) and delta x hybrid.
    const Extent vb =
        Extent::FromSortedAs(std::vector<NodeId>(b), ExtentRep::kSortedVector);
    const Extent hb =
        Extent::FromSortedAs(std::vector<NodeId>(b), ExtentRep::kHybridBitmap);
    EXPECT_EQ(Intersect(da, vb).Materialize(), and_expected) << trial;
    EXPECT_EQ(Intersect(vb, da).Materialize(), and_expected) << trial;
    EXPECT_EQ(Intersect(da, hb).Materialize(), and_expected) << trial;
    EXPECT_EQ(Difference(da, vb).Materialize(), sub_expected) << trial;
    EXPECT_EQ(Difference(da, hb).Materialize(), sub_expected) << trial;
    EXPECT_EQ(Difference(vb, da).Materialize(), OracleDifference(b, a))
        << trial;
    EXPECT_EQ(Overlaps(da, db), !and_expected.empty()) << trial;
  }
}

TEST(DeltaNativeTest, ContiguousRunDelta) {
  // delta_bits == 0: the whole extent is one arithmetic run — the cursor's
  // no-decode path.
  std::vector<NodeId> run;
  for (NodeId x = 500; x < 1500; ++x) run.push_back(x);
  const Extent da =
      Extent::FromSortedAs(std::vector<NodeId>(run), ExtentRep::kDeltaPacked);
  std::vector<NodeId> probe = {100, 499, 500, 777, 1499, 1500, 40000};
  const Extent db =
      Extent::FromSortedAs(std::vector<NodeId>(probe), ExtentRep::kDeltaPacked);
  EXPECT_EQ(Intersect(da, db).Materialize(),
            (std::vector<NodeId>{500, 777, 1499}));
  EXPECT_EQ(Difference(db, da).Materialize(),
            (std::vector<NodeId>{100, 499, 1500, 40000}));
  EXPECT_TRUE(Overlaps(da, db));
}

TEST(ExtentOpsTest, SortUniqueNormalizes) {
  std::vector<NodeId> v = {5, 1, 5, 3, 1, 1, 9};
  SortUnique(&v);
  EXPECT_EQ(v, (std::vector<NodeId>{1, 3, 5, 9}));

  std::vector<IndexNodeId> ids = {2, 2, 0};
  SortUnique(&ids);
  EXPECT_EQ(ids, (std::vector<IndexNodeId>{0, 2}));
}

}  // namespace
}  // namespace mrx
