#include <gtest/gtest.h>

#include "query/data_evaluator.h"
#include "query/path_expression.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;

PathExpression MustParse(std::string_view text, const SymbolTable& symbols) {
  auto p = PathExpression::Parse(text, symbols);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(PathExpressionTest, ParseFloating) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}});
  PathExpression p = MustParse("//a/b", g.symbols());
  EXPECT_FALSE(p.anchored());
  EXPECT_EQ(p.num_steps(), 2u);
  EXPECT_EQ(p.length(), 1u);
  EXPECT_EQ(p.ToString(g.symbols()), "//a/b");
}

TEST(PathExpressionTest, ParseAnchored) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  PathExpression p = MustParse("/r/a", g.symbols());
  EXPECT_TRUE(p.anchored());
  EXPECT_EQ(p.ToString(g.symbols()), "/r/a");
}

TEST(PathExpressionTest, BareIsFloating) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  PathExpression p = MustParse("a", g.symbols());
  EXPECT_FALSE(p.anchored());
  EXPECT_EQ(p.length(), 0u);
}

TEST(PathExpressionTest, WildcardStep) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}});
  PathExpression p = MustParse("//r/*/b", g.symbols());
  EXPECT_TRUE(p.HasWildcard());
  EXPECT_EQ(p.label(1), kWildcardLabel);
  EXPECT_TRUE(p.StepMatches(1, 0));
  EXPECT_TRUE(p.StepMatches(1, 12345));
  EXPECT_EQ(p.ToString(g.symbols()), "//r/*/b");
}

TEST(PathExpressionTest, UnknownLabelMatchesNothing) {
  DataGraph g = MakeGraph({"r"}, {});
  PathExpression p = MustParse("//nothere", g.symbols());
  EXPECT_EQ(p.label(0), kUnknownLabel);
  EXPECT_FALSE(p.StepMatches(0, 0));
  EXPECT_EQ(p.ToString(g.symbols()), "//?");
}

TEST(PathExpressionTest, ParseErrors) {
  SymbolTable symbols;
  EXPECT_FALSE(PathExpression::Parse("", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("  ", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("/", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("//", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("a///b", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("///a", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("a/", symbols).ok());
  EXPECT_FALSE(PathExpression::Parse("a//", symbols).ok());
}

TEST(PathExpressionTest, DescendantAxisParses) {
  SymbolTable symbols;
  symbols.Intern("a");
  symbols.Intern("b");
  symbols.Intern("c");
  auto p = PathExpression::Parse("//a//b/c", symbols);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->HasDescendantAxis());
  EXPECT_FALSE(p->DescendantStep(0));
  EXPECT_TRUE(p->DescendantStep(1));
  EXPECT_FALSE(p->DescendantStep(2));
  EXPECT_EQ(p->ToString(symbols), "//a//b/c");
  auto q = PathExpression::Parse("/a/b", symbols);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->HasDescendantAxis());
  // Equality distinguishes axes.
  auto plain = PathExpression::Parse("//a/b/c", symbols);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(*p == *plain);
}

TEST(PathExpressionTest, SubpathIsFloating) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}});
  PathExpression p = MustParse("/r/a/b", g.symbols());
  PathExpression sub = p.Subpath(1, 2);
  EXPECT_FALSE(sub.anchored());
  EXPECT_EQ(sub.ToString(g.symbols()), "//a/b");
}

TEST(PathExpressionTest, Equality) {
  DataGraph g = MakeGraph({"r", "a"}, {{0, 1}});
  EXPECT_TRUE(MustParse("//r/a", g.symbols()) ==
              MustParse("//r/a", g.symbols()));
  EXPECT_FALSE(MustParse("//r/a", g.symbols()) ==
               MustParse("/r/a", g.symbols()));
}

TEST(DataEvaluatorTest, Figure1SitePeoplePerson) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  // The paper: /site/people/person returns {7, 8, 9}. In our model the
  // figure's root node is labeled "root", so the anchored form includes it.
  PathExpression p = MustParse("/root/site/people/person", g.symbols());
  EXPECT_EQ(eval.Evaluate(p), (std::vector<NodeId>{7, 8, 9}));
  // Floating form finds the same nodes.
  PathExpression q = MustParse("//site/people/person", g.symbols());
  EXPECT_EQ(eval.Evaluate(q), (std::vector<NodeId>{7, 8, 9}));
}

TEST(DataEvaluatorTest, Figure1WildcardRegions) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  // The paper: /site/regions/*/item returns {12, 13, 14}.
  PathExpression p = MustParse("//site/regions/*/item", g.symbols());
  EXPECT_EQ(eval.Evaluate(p), (std::vector<NodeId>{12, 13, 14}));
}

TEST(DataEvaluatorTest, TraversesReferenceEdges) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  // auction/seller/person crosses a reference edge (seller -> person).
  PathExpression p = MustParse("//auction/seller/person", g.symbols());
  EXPECT_EQ(eval.Evaluate(p), (std::vector<NodeId>{7, 9}));
}

TEST(DataEvaluatorTest, SingleLabelQuery) {
  DataGraph g = MakeGraph({"r", "b", "b"}, {{0, 1}, {0, 2}});
  DataEvaluator eval(g);
  PathExpression p = MustParse("//b", g.symbols());
  EXPECT_EQ(eval.Evaluate(p), (std::vector<NodeId>{1, 2}));
}

TEST(DataEvaluatorTest, AnchoredRequiresRootStart) {
  // Two 'a' nodes: one child of root, one deeper.
  DataGraph g = MakeGraph({"r", "a", "r", "a"}, {{0, 1}, {0, 2}, {2, 3}});
  DataEvaluator eval(g);
  // Floating //r/a finds both; anchored /r/a only the top one.
  EXPECT_EQ(eval.Evaluate(MustParse("//r/a", g.symbols())),
            (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(eval.Evaluate(MustParse("/r/a", g.symbols())),
            (std::vector<NodeId>{1}));
}

TEST(DataEvaluatorTest, CyclesDoNotLoopForever) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}, {2, 1}});
  DataEvaluator eval(g);
  PathExpression p = MustParse("//a/b/a/b/a/b", g.symbols());
  EXPECT_EQ(eval.Evaluate(p), (std::vector<NodeId>{2}));
}

TEST(DataEvaluatorTest, HasIncomingPathBasic) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  PathExpression p = MustParse("//site/people/person", g.symbols());
  EXPECT_TRUE(eval.HasIncomingPath(7, p));
  EXPECT_TRUE(eval.HasIncomingPath(9, p));
  EXPECT_FALSE(eval.HasIncomingPath(12, p));  // an item node
  EXPECT_FALSE(eval.HasIncomingPath(1, p));   // the site node itself
}

TEST(DataEvaluatorTest, HasIncomingPathMatchesEvaluateEverywhere) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  for (const char* query :
       {"//person", "//site/people/person", "//auction/bidder/person",
        "//regions/*/item", "//item", "//auction/item/item"}) {
    PathExpression p = std::move(PathExpression::Parse(query, g.symbols())).value();
    std::vector<NodeId> expected = eval.Evaluate(p);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      bool in = std::binary_search(expected.begin(), expected.end(), n);
      EXPECT_EQ(eval.HasIncomingPath(n, p), in)
          << "node " << n << " query " << query;
    }
  }
}

TEST(DataEvaluatorTest, HasIncomingPathAnchored) {
  DataGraph g = MakeGraph({"r", "a", "r", "a"}, {{0, 1}, {0, 2}, {2, 3}});
  DataEvaluator eval(g);
  PathExpression p = std::move(PathExpression::Parse("/r/a", g.symbols())).value();
  EXPECT_TRUE(eval.HasIncomingPath(1, p));
  EXPECT_FALSE(eval.HasIncomingPath(3, p));
}

TEST(DataEvaluatorTest, ValidationCountsVisitedNodes) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}});
  DataEvaluator eval(g);
  PathExpression p = std::move(PathExpression::Parse("//r/a/b", g.symbols())).value();
  uint64_t visited = 0;
  EXPECT_TRUE(eval.HasIncomingPath(2, p, &visited));
  // Visits b itself, then a, then r.
  EXPECT_EQ(visited, 3u);
}

TEST(DataEvaluatorTest, MismatchedLastLabelCostsNothing) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}});
  DataEvaluator eval(g);
  PathExpression p = std::move(PathExpression::Parse("//r/a", g.symbols())).value();
  uint64_t visited = 0;
  EXPECT_FALSE(eval.HasIncomingPath(2, p, &visited));
  EXPECT_EQ(visited, 0u);
}

}  // namespace
}  // namespace mrx
