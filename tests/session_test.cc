#include <gtest/gtest.h>

#include "core/mrx.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(FupExtractorTest, PromotesAtThreshold) {
  DataGraph g = MakeFigure3Graph();
  FupExtractor extractor(FupExtractor::Options{3, 0});
  PathExpression p = Q(g, "//r/a/b");
  EXPECT_FALSE(extractor.Observe(p));
  EXPECT_FALSE(extractor.Observe(p));
  EXPECT_TRUE(extractor.Observe(p));   // Third observation promotes.
  EXPECT_FALSE(extractor.Observe(p));  // Promoted only once.
  EXPECT_EQ(extractor.Frequency(p), 4u);
  ASSERT_EQ(extractor.fups().size(), 1u);
  EXPECT_TRUE(extractor.fups()[0] == p);
}

TEST(FupExtractorTest, DistinguishesQueries) {
  DataGraph g = MakeFigure3Graph();
  FupExtractor extractor(FupExtractor::Options{2, 0});
  EXPECT_FALSE(extractor.Observe(Q(g, "//r/a")));
  EXPECT_FALSE(extractor.Observe(Q(g, "//r/c")));
  EXPECT_FALSE(extractor.Observe(Q(g, "/r/a")));  // Anchored is distinct.
  EXPECT_TRUE(extractor.Observe(Q(g, "//r/a")));
  EXPECT_EQ(extractor.num_tracked(), 3u);
}

TEST(FupExtractorTest, IgnoresSingleLabelQueries) {
  DataGraph g = MakeFigure3Graph();
  FupExtractor extractor(FupExtractor::Options{1, 0});
  EXPECT_FALSE(extractor.Observe(Q(g, "//b")));
  EXPECT_FALSE(extractor.Observe(Q(g, "//b")));
  EXPECT_TRUE(extractor.fups().empty());
}

TEST(FupExtractorTest, TrackingCapHolds) {
  DataGraph g = MakeFigure3Graph();
  FupExtractor extractor(FupExtractor::Options{1, 2});
  EXPECT_TRUE(extractor.Observe(Q(g, "//r/a")));
  EXPECT_TRUE(extractor.Observe(Q(g, "//r/c")));
  // Table is full; new queries are not tracked.
  EXPECT_FALSE(extractor.Observe(Q(g, "//r/d")));
  EXPECT_EQ(extractor.num_tracked(), 2u);
  // Already-tracked queries keep counting.
  EXPECT_EQ(extractor.Frequency(Q(g, "//r/a")), 1u);
}

TEST(FupExtractorTest, MinFrequencyOneRefinesImmediately) {
  DataGraph g = MakeFigure3Graph();
  FupExtractor extractor(FupExtractor::Options{1, 0});
  EXPECT_TRUE(extractor.Observe(Q(g, "//r/a/b")));
}

TEST(SessionTest, RefinesAfterThresholdAndBecomesPrecise) {
  DataGraph g = MakeFigure3Graph();
  SessionOptions options;
  options.refine_after = 2;
  AdaptiveIndexSession session(g, options);
  PathExpression p = Q(g, "//r/a/b");

  QueryResult first = session.Query(p);
  EXPECT_FALSE(first.precise);  // Still the A(0) index.
  EXPECT_EQ(first.answer, (std::vector<NodeId>{4}));
  EXPECT_EQ(session.index().num_components(), 1u);

  QueryResult second = session.Query(p);  // Promotion happens here.
  EXPECT_TRUE(second.precise);
  EXPECT_EQ(second.answer, (std::vector<NodeId>{4}));
  EXPECT_EQ(session.index().num_components(), 3u);
  EXPECT_EQ(session.queries_answered(), 2u);
  EXPECT_GT(session.cumulative_stats().total(), 0u);
}

TEST(SessionTest, PeekDoesNotObserve) {
  DataGraph g = MakeFigure3Graph();
  SessionOptions options;
  options.refine_after = 1;
  AdaptiveIndexSession session(g, options);
  PathExpression p = Q(g, "//r/a/b");
  session.Peek(p);
  session.Peek(p);
  EXPECT_EQ(session.index().num_components(), 1u);
  EXPECT_EQ(session.queries_answered(), 0u);
  session.Query(p);
  EXPECT_EQ(session.index().num_components(), 3u);
}

TEST(SessionTest, ManualRefine) {
  DataGraph g = MakeFigure3Graph();
  AdaptiveIndexSession session(g);
  session.Refine(Q(g, "//r/a/b"));
  EXPECT_TRUE(session.Peek(Q(g, "//r/a/b")).precise);
}

TEST(SessionTest, StrategiesAllAnswerExactly) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  PathExpression p = Q(g, "//site/people/person");
  for (auto strategy :
       {SessionOptions::Strategy::kTopDown, SessionOptions::Strategy::kNaive,
        SessionOptions::Strategy::kBottomUp,
        SessionOptions::Strategy::kHybrid,
        SessionOptions::Strategy::kAuto}) {
    SessionOptions options;
    options.strategy = strategy;
    options.refine_after = 1;
    AdaptiveIndexSession session(g, options);
    EXPECT_EQ(session.Query(p).answer, eval.Evaluate(p));
    EXPECT_EQ(session.Query(p).answer, eval.Evaluate(p));
  }
}

TEST(SessionTest, ResultCacheServesRepeats) {
  DataGraph g = MakeFigure1Graph();
  SessionOptions options;
  options.cache_results = true;
  options.refine_after = 100;  // No refinement in this test.
  AdaptiveIndexSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");

  QueryResult cold = session.Query(p);
  EXPECT_GT(cold.stats.total(), 0u);
  EXPECT_EQ(session.cache_hits(), 0u);

  QueryResult warm = session.Query(p);
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_EQ(warm.answer, cold.answer);
  EXPECT_EQ(warm.stats.total(), 0u);  // Served from cache.
}

TEST(SessionTest, CacheInvalidatedByRefinement) {
  DataGraph g = MakeFigure1Graph();
  SessionOptions options;
  options.cache_results = true;
  options.refine_after = 2;
  AdaptiveIndexSession session(g, options);
  PathExpression p = Q(g, "//site/people/person");
  session.Query(p);                      // Cold, cached.
  QueryResult r = session.Query(p);      // Promotion -> cache cleared.
  EXPECT_EQ(session.cache_hits(), 0u);
  EXPECT_TRUE(r.precise);
  QueryResult hit = session.Query(p);    // Re-cached, now a hit.
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_EQ(hit.answer, r.answer);
}

TEST(SessionTest, CacheEvictsOldestAtCapacity) {
  DataGraph g = MakeFigure1Graph();
  SessionOptions options;
  options.cache_results = true;
  options.cache_capacity = 2;
  options.refine_after = 100;
  AdaptiveIndexSession session(g, options);
  PathExpression a = Q(g, "//person");
  PathExpression b = Q(g, "//item");
  PathExpression c = Q(g, "//bidder");
  session.Query(a);
  session.Query(b);
  session.Query(c);  // Evicts a.
  session.Query(b);  // Hit.
  EXPECT_EQ(session.cache_hits(), 1u);
  session.Query(a);  // Miss (was evicted).
  EXPECT_EQ(session.cache_hits(), 1u);
}

TEST(SessionTest, CacheHitRefreshesRecencySoEvictionIsLru) {
  DataGraph g = MakeFigure1Graph();
  SessionOptions options;
  options.cache_results = true;
  options.cache_capacity = 2;
  options.refine_after = 100;
  AdaptiveIndexSession session(g, options);
  PathExpression a = Q(g, "//person");
  PathExpression b = Q(g, "//item");
  PathExpression c = Q(g, "//bidder");
  session.Query(a);
  session.Query(b);
  session.Query(a);  // Hit; refreshes a's recency, so b is now LRU.
  EXPECT_EQ(session.cache_hits(), 1u);
  session.Query(c);  // Evicts b (a FIFO memo would evict a instead).
  session.Query(a);  // Still cached.
  EXPECT_EQ(session.cache_hits(), 2u);
  session.Query(b);  // Miss: was evicted.
  EXPECT_EQ(session.cache_hits(), 2u);
}

TEST(SessionTest, FullWorkloadDrivesCostDown) {
  DataGraph g = MakeFigure1Graph();
  SessionOptions options;
  options.refine_after = 2;
  AdaptiveIndexSession session(g, options);
  PathExpression p = Q(g, "//site/auctions/auction/bidder/person");
  uint64_t cold = session.Query(p).stats.total();
  session.Query(p);  // Triggers refinement.
  uint64_t warm = session.Query(p).stats.total();
  EXPECT_LT(warm, cold);
}

}  // namespace
}  // namespace mrx
