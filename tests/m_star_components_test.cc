// Tests for MStarIndex::FromComponents (the storage layer's reassembly
// path): valid specs rebuild an equivalent index; malformed specs are
// rejected with precise errors rather than producing a broken index.

#include <gtest/gtest.h>

#include "index/bisimulation.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

/// Extracts the component specs of an index the way the storage encoder
/// does (ordinal = position among alive nodes).
std::vector<MStarComponentSpec> SpecsOf(const MStarIndex& index) {
  std::vector<MStarComponentSpec> specs;
  for (size_t i = 0; i < index.num_components(); ++i) {
    const IndexGraph& comp = index.component(i);
    MStarComponentSpec spec;
    std::vector<uint32_t> ordinal_of;
    if (i > 0) {
      const IndexGraph& prev = index.component(i - 1);
      ordinal_of.assign(prev.capacity(), 0);
      uint32_t ordinal = 0;
      for (IndexNodeId v : prev.AliveNodes()) ordinal_of[v] = ordinal++;
    }
    for (IndexNodeId v : comp.AliveNodes()) {
      spec.extents.push_back(comp.node(v).extent);
      spec.ks.push_back(comp.node(v).k);
      spec.supernodes.push_back(
          i > 0 ? ordinal_of[index.supernode(i, v)] : 0);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(FromComponentsTest, RebuildsEquivalentIndex) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression fup = Q(g, "//r/a/b");
  index.Refine(fup);

  auto rebuilt = MStarIndex::FromComponents(g, SpecsOf(index));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(rebuilt->num_components(), index.num_components());
  EXPECT_EQ(rebuilt->PhysicalNodeCount(), index.PhysicalNodeCount());
  QueryResult r = rebuilt->QueryTopDown(fup);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, eval.Evaluate(fup));
}

TEST(FromComponentsTest, RejectsEmptySpecList) {
  DataGraph g = MakeFigure3Graph();
  EXPECT_FALSE(MStarIndex::FromComponents(g, {}).ok());
}

TEST(FromComponentsTest, RejectsNonPartition) {
  DataGraph g = MakeFigure3Graph();
  MStarComponentSpec spec;
  spec.extents = {Extent(std::vector<NodeId>{0, 1}),
                  Extent(std::vector<NodeId>{1, 2})};  // Node 1 twice.
  spec.ks = {0, 0};
  spec.supernodes = {0, 0};
  EXPECT_FALSE(MStarIndex::FromComponents(g, {spec}).ok());
}

TEST(FromComponentsTest, RejectsIncompleteCover) {
  DataGraph g = MakeFigure3Graph();
  MStarComponentSpec spec;
  spec.extents = {Extent(std::vector<NodeId>{0, 1, 2})};  // 3..9 missing.
  spec.ks = {0};
  spec.supernodes = {0};
  EXPECT_FALSE(MStarIndex::FromComponents(g, {spec}).ok());
}

TEST(FromComponentsTest, RejectsMismatchedVectors) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  auto specs = SpecsOf(index);
  specs[0].ks.pop_back();
  EXPECT_FALSE(MStarIndex::FromComponents(g, specs).ok());
}

TEST(FromComponentsTest, RejectsBadSupernodeOrdinal) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a"));
  auto specs = SpecsOf(index);
  ASSERT_GT(specs.size(), 1u);
  specs[1].supernodes[0] = 10000;
  EXPECT_FALSE(MStarIndex::FromComponents(g, specs).ok());
}

TEST(FromComponentsTest, RejectsHierarchyViolation) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a"));
  auto specs = SpecsOf(index);
  ASSERT_GT(specs.size(), 1u);
  // Point a node at the wrong supernode: Property 3 (extent containment)
  // breaks and CheckProperties must catch it.
  specs[1].supernodes[0] =
      (specs[1].supernodes[0] + 1) % specs[0].extents.size();
  EXPECT_FALSE(MStarIndex::FromComponents(g, specs).ok());
}

TEST(FromComponentsTest, RejectsOverCapSimilarity) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  auto specs = SpecsOf(index);
  specs[0].ks[0] = 3;  // Component 0 caps k at 0.
  EXPECT_FALSE(MStarIndex::FromComponents(g, specs).ok());
}

TEST(StaticHierarchyTest, SatisfiesPropertiesAndIsPrecise) {
  DataGraph g = mrx::testing::MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index = MStarIndex::BuildStaticHierarchy(g, 4);
  ASSERT_EQ(index.num_components(), 5u);
  ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  // Precise for everything up to length 4, no refinement ever done.
  for (const char* text :
       {"//person", "//people/person", "//site/people/person",
        "//auctions/auction/seller/person",
        "//site/auctions/auction/bidder/person"}) {
    auto p = PathExpression::Parse(text, g.symbols());
    ASSERT_TRUE(p.ok());
    QueryResult r = index.QueryTopDown(*p);
    EXPECT_TRUE(r.precise) << text;
    EXPECT_EQ(r.answer, eval.Evaluate(*p)) << text;
  }
}

TEST(StaticHierarchyTest, ComponentIMatchesAk) {
  DataGraph g = mrx::testing::RandomGraph(401, 50, 4, 25);
  MStarIndex index = MStarIndex::BuildStaticHierarchy(g, 3);
  for (int i = 0; i <= 3; ++i) {
    BisimulationPartition part = ComputeKBisimulation(g, i);
    EXPECT_EQ(index.component(i).num_nodes(), part.num_blocks) << i;
  }
}

TEST(StaticHierarchyTest, RefineBeyondCapStillWorks) {
  DataGraph g = mrx::testing::MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index = MStarIndex::BuildStaticHierarchy(g, 2);
  auto p = PathExpression::Parse(
      "//root/site/auctions/auction/seller/person", g.symbols());
  ASSERT_TRUE(p.ok());
  index.Refine(*p);
  ASSERT_TRUE(index.CheckProperties().ok()) << index.CheckProperties();
  QueryResult r = index.QueryTopDown(*p);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, eval.Evaluate(*p));
}

}  // namespace
}  // namespace mrx
