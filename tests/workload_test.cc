#include <gtest/gtest.h>

#include <set>

#include "query/data_evaluator.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;

TEST(LabelPathsTest, EnumeratesExactRootedPaths) {
  //     r
  //    / \
  //   a   b
  //   |   |
  //   c   c
  DataGraph g = MakeGraph({"r", "a", "b", "c", "c"},
                          {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  LabelPathEnumerationOptions options;
  options.max_length = 9;
  LabelPathSet set = EnumerateLabelPaths(g, options);
  EXPECT_FALSE(set.truncated);
  std::set<std::string> rendered;
  for (const auto& path : set.paths) {
    std::string s;
    for (LabelId l : path) {
      if (!s.empty()) s += '/';
      s += g.symbols().Name(l);
    }
    rendered.insert(s);
  }
  EXPECT_EQ(rendered, (std::set<std::string>{"r", "r/a", "r/b", "r/a/c",
                                             "r/b/c"}));
}

TEST(LabelPathsTest, RespectsMaxLength) {
  DataGraph g = MakeGraph({"r", "a", "b", "c"}, {{0, 1}, {1, 2}, {2, 3}});
  LabelPathEnumerationOptions options;
  options.max_length = 1;
  LabelPathSet set = EnumerateLabelPaths(g, options);
  for (const auto& path : set.paths) EXPECT_LE(path.size(), 2u);
  EXPECT_EQ(set.paths.size(), 2u);  // r, r/a
}

TEST(LabelPathsTest, CyclesAreBoundedByLength) {
  DataGraph g = MakeGraph({"r", "a", "b"}, {{0, 1}, {1, 2}, {2, 1}});
  LabelPathEnumerationOptions options;
  options.max_length = 5;
  LabelPathSet set = EnumerateLabelPaths(g, options);
  // r, r/a, r/a/b, r/a/b/a, r/a/b/a/b, r/a/b/a/b/a — one per length.
  EXPECT_EQ(set.paths.size(), 6u);
}

TEST(LabelPathsTest, TruncationCapHolds) {
  DataGraph g = MakeFigure1Graph();
  LabelPathEnumerationOptions options;
  options.max_length = 9;
  options.max_paths = 10;
  LabelPathSet set = EnumerateLabelPaths(g, options);
  EXPECT_TRUE(set.truncated);
  EXPECT_EQ(set.paths.size(), 10u);
}

TEST(LabelPathsTest, EveryEnumeratedPathHasInstances) {
  DataGraph g = MakeFigure1Graph();
  LabelPathEnumerationOptions options;
  options.max_length = 6;
  LabelPathSet set = EnumerateLabelPaths(g, options);
  EXPECT_FALSE(set.truncated);
  DataEvaluator eval(g);
  for (const auto& labels : set.paths) {
    PathExpression p(labels, /*anchored=*/false);
    EXPECT_FALSE(eval.Evaluate(p).empty())
        << p.ToString(g.symbols()) << " has no instance";
  }
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  DataGraph g = MakeFigure1Graph();
  LabelPathSet paths = EnumerateLabelPaths(g, {});
  WorkloadOptions options;
  options.num_queries = 123;
  auto queries = GenerateWorkload(paths, options);
  EXPECT_EQ(queries.size(), 123u);
}

TEST(WorkloadTest, RespectsMaxQueryLength) {
  DataGraph g = MakeFigure1Graph();
  LabelPathSet paths = EnumerateLabelPaths(g, {});
  WorkloadOptions options;
  options.num_queries = 400;
  options.max_query_length = 4;
  for (const PathExpression& q : GenerateWorkload(paths, options)) {
    EXPECT_LE(q.length(), 4u);
    EXPECT_FALSE(q.anchored());
  }
}

TEST(WorkloadTest, QueriesAreSubsequencesOfRealPaths) {
  DataGraph g = MakeFigure1Graph();
  LabelPathSet paths = EnumerateLabelPaths(g, {});
  WorkloadOptions options;
  options.num_queries = 200;
  DataEvaluator eval(g);
  for (const PathExpression& q : GenerateWorkload(paths, options)) {
    EXPECT_FALSE(eval.Evaluate(q).empty()) << q.ToString(g.symbols());
  }
}

TEST(WorkloadTest, ShortQueriesDominate) {
  // The paper's Figures 8-9: random start positions bias toward short
  // queries.
  DataGraph g = MakeFigure1Graph();
  LabelPathSet paths = EnumerateLabelPaths(g, {});
  WorkloadOptions options;
  options.num_queries = 2000;
  auto queries = GenerateWorkload(paths, options);
  auto hist = QueryLengthHistogram(queries, options.max_query_length);
  EXPECT_EQ(hist.size(), 10u);
  double total = 0;
  for (double f : hist) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Length 0 is the most common bucket and lengths decay overall.
  EXPECT_GT(hist[0], hist[3]);
  EXPECT_GT(hist[1], hist[5]);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  DataGraph g = MakeFigure1Graph();
  LabelPathSet paths = EnumerateLabelPaths(g, {});
  WorkloadOptions options;
  options.num_queries = 50;
  options.seed = 77;
  auto a = GenerateWorkload(paths, options);
  auto b = GenerateWorkload(paths, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  options.seed = 78;
  auto c = GenerateWorkload(paths, options);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, EmptyPathSetYieldsNoQueries) {
  LabelPathSet empty;
  EXPECT_TRUE(GenerateWorkload(empty, {}).empty());
}

TEST(WorkloadTest, HistogramOfEmptyWorkloadIsZero) {
  auto hist = QueryLengthHistogram({}, 4);
  for (double f : hist) EXPECT_EQ(f, 0.0);
}

// Golden-seed pin: the generator draws exclusively from the in-repo
// Xoshiro256** Rng (no std::shuffle / std::uniform_int_distribution, whose
// outputs are implementation-defined), so a fixed (graph, seed) must yield
// these exact queries on every platform and standard library. If this test
// breaks, the workload is no longer byte-identical across toolchains —
// which silently changes every seeded benchmark and differential-check
// run. Do not regenerate the list casually.
TEST(WorkloadTest, GoldenSeedFirst32QueriesArePinned) {
  DataGraph g = MakeFigure1Graph();
  LabelPathEnumerationOptions eo;
  eo.max_length = 6;
  LabelPathSet paths = EnumerateLabelPaths(g, eo);
  WorkloadOptions wo;
  wo.num_queries = 32;
  wo.max_query_length = 6;
  wo.seed = 7;
  std::vector<PathExpression> workload = GenerateWorkload(paths, wo);
  const std::vector<std::string> kGolden = {
      "//site/auctions/auction/item",
      "//person",
      "//root",
      "//site/regions",
      "//person",
      "//site/regions",
      "//root",
      "//auction",
      "//root",
      "//root/site/regions",
      "//root/site",
      "//person",
      "//regions/asia",
      "//person",
      "//root/site/regions/africa",
      "//root",
      "//auction/bidder",
      "//site/auctions/auction/item/item",
      "//item",
      "//auction",
      "//site",
      "//site/auctions/auction/bidder",
      "//site/auctions",
      "//root/site/auctions/auction",
      "//site/auctions",
      "//auction/item",
      "//site",
      "//root",
      "//site/auctions/auction",
      "//root",
      "//root",
      "//regions/africa/item",
  };
  ASSERT_EQ(workload.size(), kGolden.size());
  for (size_t i = 0; i < kGolden.size(); ++i) {
    EXPECT_EQ(workload[i].ToString(g.symbols()), kGolden[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace mrx
