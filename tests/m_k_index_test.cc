#include <gtest/gtest.h>

#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::MakeOverqualifiedGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(MkIndexTest, StartsAsA0) {
  DataGraph g = MakeFigure3Graph();
  MkIndex index(g);
  EXPECT_EQ(index.graph().num_nodes(), 5u);
  for (IndexNodeId v : index.graph().AliveNodes()) {
    EXPECT_EQ(index.graph().node(v).k, 0);
  }
}

TEST(MkIndexTest, Figure3RefinementIsCompact) {
  // The paper's Figure 3(d): refining for r/a/b separates only the
  // relevant b node {4}; all irrelevant b's stay in one remainder node
  // with their old similarity.
  DataGraph g = MakeFigure3Graph();
  MkIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  EXPECT_TRUE(index.graph().CheckConsistency().ok());

  IndexNodeId b4 = index.graph().index_of(4);
  EXPECT_EQ(index.graph().node(b4).extent, (std::vector<NodeId>{4}));
  EXPECT_EQ(index.graph().node(b4).k, 2);
  IndexNodeId rest = index.graph().index_of(5);
  EXPECT_EQ(index.graph().node(rest).extent,
            (std::vector<NodeId>{5, 6, 7, 8, 9}));
  EXPECT_EQ(index.graph().node(rest).k, 0);
  // 6 index nodes total (the figure's part (d)) vs D(k)-promote's 7+.
  EXPECT_EQ(index.graph().num_nodes(), 6u);
}

TEST(MkIndexTest, SmallerThanDkPromoteOnFigure3) {
  DataGraph g = MakeFigure3Graph();
  MkIndex mk(g);
  DkIndex dk(g);
  PathExpression p = Q(g, "//r/a/b");
  mk.Refine(p);
  dk.Promote(p);
  EXPECT_LT(mk.graph().num_nodes(), dk.graph().num_nodes());
}

TEST(MkIndexTest, RefinedFupIsPreciseAndExact) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MkIndex index(g);
  PathExpression p = Q(g, "//r/a/b");
  index.Refine(p);
  QueryResult r = index.Query(p);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, eval.Evaluate(p));
}

TEST(MkIndexTest, UnrefinedQueriesStillExactViaValidation) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  MkIndex index(g);
  PathExpression p = Q(g, "//c/b");
  QueryResult r = index.Query(p);
  EXPECT_FALSE(r.precise);
  EXPECT_GT(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, eval.Evaluate(p));
}

TEST(MkIndexTest, PropertiesHoldAfterEachRefinement) {
  DataGraph g = RandomGraph(71, 50, 4, 25);
  DataEvaluator eval(g);
  MkIndex index(g);
  const SymbolTable& symbols = g.symbols();
  int refined = 0;
  for (LabelId a = 0; a < symbols.size() && refined < 6; ++a) {
    for (LabelId b = 0; b < symbols.size() && refined < 6; ++b) {
      PathExpression p({a, b}, false);
      if (eval.Evaluate(p).empty()) continue;
      index.Refine(p);
      ++refined;
      ASSERT_TRUE(index.graph().CheckConsistency().ok());
      ASSERT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()));
      ASSERT_TRUE(mrx::testing::SatisfiesProperty3(index.graph()));
    }
  }
  EXPECT_GT(refined, 0);
}

TEST(MkIndexTest, EmptyTargetFupOnlyBreaksFalseInstances) {
  DataGraph g = MakeFigure3Graph();
  MkIndex index(g);
  // //d/b/c matches nothing (b has no c child).
  PathExpression p = Q(g, "//a/b/c");
  index.Refine(p);
  EXPECT_TRUE(index.graph().CheckConsistency().ok());
  QueryResult r = index.Query(p);
  EXPECT_TRUE(r.answer.empty());
}

TEST(MkIndexTest, ZeroLengthFupIsNoOp) {
  DataGraph g = MakeFigure3Graph();
  MkIndex index(g);
  index.Refine(Q(g, "//b"));
  EXPECT_EQ(index.graph().num_nodes(), 5u);
}

TEST(MkIndexTest, IdempotentRefinement) {
  DataGraph g = MakeFigure3Graph();
  MkIndex index(g);
  PathExpression p = Q(g, "//r/a/b");
  index.Refine(p);
  size_t nodes = index.graph().num_nodes();
  index.Refine(p);
  EXPECT_EQ(index.graph().num_nodes(), nodes);
}

TEST(MkIndexTest, SuffersFromOverqualifiedParents) {
  // Like D(k)-promote, M(k) splits the 1-bisimilar c's once the b parents
  // are overqualified (the limitation §4 removes via M*(k)).
  DataGraph g = MakeOverqualifiedGraph();
  MkIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  index.Refine(Q(g, "//b/c"));
  EXPECT_TRUE(index.graph().CheckConsistency().ok());
  mrx::testing::ReferenceBisimilarity ref(g);
  EXPECT_TRUE(ref.Bisimilar(5, 6, 1));
  EXPECT_NE(index.graph().index_of(5), index.graph().index_of(6));
}

TEST(MkIndexTest, MergeAblationReproducesPromoteBehaviour) {
  DataGraph g = MakeFigure3Graph();
  MkIndex merged(g);
  MkIndex unmerged(g);
  unmerged.set_merge_unnecessary_splits(false);
  PathExpression p = Q(g, "//r/a/b");
  merged.Refine(p);
  unmerged.Refine(p);
  // Without the vrest merge, irrelevant b's split by their c/d parents.
  EXPECT_GT(unmerged.graph().num_nodes(), merged.graph().num_nodes());
  EXPECT_TRUE(unmerged.graph().CheckConsistency().ok());
}

TEST(MkIndexTest, LongerFupsRefineAncestorsTransitively) {
  DataGraph g = MakeGraph(
      {"r", "s", "a", "a", "b", "b", "c", "c"},
      {{0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 7}, {0, 1}});
  DataEvaluator eval(g);
  MkIndex index(g);
  PathExpression p = Q(g, "//r/a/b/c");
  index.Refine(p);
  EXPECT_TRUE(index.graph().CheckConsistency().ok());
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()));
  QueryResult r = index.Query(p);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{6}));
  // The b's got separated (their parents differ at level 1 of the FUP).
  EXPECT_NE(index.graph().index_of(4), index.graph().index_of(5));
}

}  // namespace
}  // namespace mrx
