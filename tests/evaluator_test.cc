#include <gtest/gtest.h>

#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(IndexTargetSetTest, SingleLabel) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  QueryStats stats;
  auto target = IndexTargetSet(ig, Q(g, "//b"), &stats);
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(ig.node(target[0]).label, *g.symbols().Lookup("b"));
  EXPECT_EQ(stats.index_nodes_visited, 1u);
}

TEST(IndexTargetSetTest, PathTraversal) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  QueryStats stats;
  auto target = IndexTargetSet(ig, Q(g, "//r/a/b"), &stats);
  ASSERT_EQ(target.size(), 1u);
  // Visits r at level 0, a at level 1, b at level 2.
  EXPECT_EQ(stats.index_nodes_visited, 3u);
}

TEST(IndexTargetSetTest, NoMatchesIsEmptyAndCheap) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  QueryStats stats;
  EXPECT_TRUE(IndexTargetSet(ig, Q(g, "//b/r"), &stats).empty());
  // Only the b node was put on a frontier.
  EXPECT_EQ(stats.index_nodes_visited, 1u);
}

TEST(IndexTargetSetTest, UnknownLabelIsFree) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  QueryStats stats;
  EXPECT_TRUE(IndexTargetSet(ig, Q(g, "//nothing"), &stats).empty());
  EXPECT_EQ(stats.index_nodes_visited, 0u);
}

TEST(IndexTargetSetTest, AnchoredStartsAtRootNode) {
  // Two r-labeled nodes; anchored paths start at the root's index node
  // only.
  DataGraph g = MakeGraph({"r", "r", "a"}, {{0, 1}, {1, 2}});
  IndexGraph ig = IndexGraph::LabelPartition(g);
  auto anchored = IndexTargetSet(ig, Q(g, "/r/a"), nullptr);
  auto floating = IndexTargetSet(ig, Q(g, "//r/a"), nullptr);
  EXPECT_EQ(anchored.size(), 1u);
  EXPECT_EQ(floating.size(), 1u);
}

TEST(IndexTargetSetTest, WildcardStep) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  auto target = IndexTargetSet(ig, Q(g, "//r/*/b"), nullptr);
  ASSERT_EQ(target.size(), 1u);
}

TEST(IndexTargetSetTest, SkipsDeadNodes) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  IndexNodeId b = ig.index_of(4);
  ig.ReplaceNode(b, {{{4}, 1}, {{5, 6, 7, 8, 9}, 0}});
  auto target = IndexTargetSet(ig, Q(g, "//b"), nullptr);
  EXPECT_EQ(target.size(), 2u);
  for (IndexNodeId v : target) EXPECT_TRUE(ig.alive(v));
}

TEST(AnswerOnIndexTest, PreciseSkipsValidation) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  DataEvaluator eval(g);
  // Raise every node's k artificially; extents of the label partition for
  // this tree-shaped graph happen to be fully bisimilar except b.
  QueryResult r = AnswerOnIndex(ig, Q(g, "//c"), &eval);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{2}));
}

TEST(AnswerOnIndexTest, UnderRefinedTargetValidates) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  DataEvaluator eval(g);
  QueryResult r = AnswerOnIndex(ig, Q(g, "//a/b"), &eval);
  EXPECT_FALSE(r.precise);
  EXPECT_GT(r.stats.data_nodes_validated, 0u);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{4}));
}

TEST(AnswerOnIndexTest, AnchoredAlwaysValidates) {
  DataGraph g = MakeFigure3Graph();
  IndexGraph ig = IndexGraph::LabelPartition(g);
  DataEvaluator eval(g);
  QueryResult r = AnswerOnIndex(ig, Q(g, "/r"), &eval);
  EXPECT_FALSE(r.precise);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{0}));
}

TEST(AnswerOnIndexTest, StatsAccumulateAcrossTargets) {
  DataGraph g = MakeGraph({"r", "x", "y", "b", "b"},
                          {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  IndexGraph ig = IndexGraph::LabelPartition(g);
  // Split b by hand so //b has two target index nodes.
  ig.ReplaceNode(ig.index_of(3), {{{3}, 0}, {{4}, 0}});
  DataEvaluator eval(g);
  QueryResult r = AnswerOnIndex(ig, Q(g, "//x/b"), &eval);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{3}));
  // Both b nodes were reached? No: only x's child {3}. Target is 1 node.
  EXPECT_EQ(r.target.size(), 1u);
}

TEST(QueryStatsTest, AdditionAndTotal) {
  QueryStats a{3, 4};
  QueryStats b{10, 20};
  a += b;
  EXPECT_EQ(a.index_nodes_visited, 13u);
  EXPECT_EQ(a.data_nodes_validated, 24u);
  EXPECT_EQ(a.total(), 37u);
}

}  // namespace
}  // namespace mrx
