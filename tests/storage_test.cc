#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "harness/datasets.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "storage/binary_io.h"
#include "storage/disk_m_star_index.h"
#include "storage/graph_io.h"
#include "storage/index_io.h"
#include "tests/test_util.h"

namespace mrx::storage {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeFigure3Graph;
using mrx::testing::RandomGraph;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(BinaryIoTest, VarintRoundTrip) {
  BinaryWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, ~0ULL};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, SignedVarintRoundTrip) {
  BinaryWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, -100000, 1LL << 40,
                            -(1LL << 40)};
  for (int64_t v : values) w.PutSignedVarint(v);
  BinaryReader r(w.buffer());
  for (int64_t v : values) {
    auto got = r.GetSignedVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(BinaryIoTest, StringAndFixedRoundTrip) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutFixed32(0xDEADBEEF);
  w.PutFixed64(0x0123456789ABCDEFULL);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetFixed64(), 0x0123456789ABCDEFULL);
}

TEST(BinaryIoTest, TruncationIsAnError) {
  BinaryWriter w;
  w.PutVarint(1u << 30);
  std::string bytes = w.TakeBuffer();
  BinaryReader r(std::string_view(bytes).substr(0, bytes.size() - 1));
  EXPECT_FALSE(r.GetVarint().ok());

  BinaryReader r2("\x05" "ab");  // String claims 5 bytes, has 2.
  EXPECT_FALSE(r2.GetString().ok());
}

TEST(BinaryIoTest, ChecksumDetectsFlips) {
  std::string data = "some index bytes";
  uint64_t sum = Checksum(data);
  data[3] ^= 1;
  EXPECT_NE(Checksum(data), sum);
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  DataGraph original = MakeFigure1Graph();
  std::string blob = SerializeDataGraph(original);
  auto loaded = DeserializeDataGraph(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  EXPECT_EQ(loaded->num_reference_edges(), original.num_reference_edges());
  EXPECT_EQ(loaded->root(), original.root());
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    EXPECT_EQ(loaded->label_name(n), original.label_name(n));
    auto a = original.children(n);
    auto b = loaded->children(n);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_EQ(original.child_kinds(n)[i], loaded->child_kinds(n)[i]);
    }
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  DataGraph g = RandomGraph(7, 50, 5, 25);
  std::string path = TempPath("mrx_graph_io_test.mrxg");
  ASSERT_TRUE(SaveDataGraphToFile(g, path).ok());
  auto loaded = LoadDataGraphFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, CorruptionIsDetected) {
  DataGraph g = MakeFigure3Graph();
  std::string blob = SerializeDataGraph(g);
  EXPECT_FALSE(DeserializeDataGraph("XXXX" + blob.substr(4)).ok());
  std::string flipped = blob;
  flipped[flipped.size() / 2] ^= 0x40;
  auto r = DeserializeDataGraph(flipped);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(DeserializeDataGraph(blob.substr(0, blob.size() - 3)).ok());
}

TEST(IndexIoTest, RoundTripPreservesComponents) {
  DataGraph g = MakeFigure1Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//site/people/person"));
  index.Refine(Q(g, "//auction/seller/person"));
  ASSERT_TRUE(index.CheckProperties().ok());

  std::string bytes = SerializeMStarIndex(index);
  auto loaded = DeserializeMStarIndex(g, bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_components(), index.num_components());
  for (size_t i = 0; i < index.num_components(); ++i) {
    EXPECT_EQ(loaded->component(i).num_nodes(),
              index.component(i).num_nodes());
    EXPECT_EQ(loaded->component(i).num_edges(),
              index.component(i).num_edges());
    // Same partition: each data node's extent-mates coincide.
    for (NodeId o = 0; o < g.num_nodes(); ++o) {
      EXPECT_EQ(
          loaded->component(i).node(loaded->component(i).index_of(o)).extent,
          index.component(i).node(index.component(i).index_of(o)).extent);
      EXPECT_EQ(
          loaded->component(i).node(loaded->component(i).index_of(o)).k,
          index.component(i).node(index.component(i).index_of(o)).k);
    }
  }
  EXPECT_EQ(loaded->PhysicalNodeCount(), index.PhysicalNodeCount());
  EXPECT_EQ(loaded->PhysicalEdgeCount(), index.PhysicalEdgeCount());
}

TEST(IndexIoTest, LoadedIndexAnswersQueries) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  PathExpression fup = Q(g, "//site/people/person");
  index.Refine(fup);
  std::string path = TempPath("mrx_index_io_test.mrxs");
  ASSERT_TRUE(SaveMStarIndexToFile(index, path).ok());
  auto loaded = LoadMStarIndexFromFile(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  QueryResult r = loaded->QueryTopDown(fup);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, eval.Evaluate(fup));
  std::remove(path.c_str());
}

TEST(IndexIoTest, ChecksumMismatchIsDetected) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  std::string bytes = SerializeMStarIndex(index);
  bytes.back() ^= 0x01;  // Corrupt the last component blob.
  EXPECT_FALSE(DeserializeMStarIndex(g, bytes).ok());
}

TEST(IndexIoTest, WrongGraphIsRejected) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  std::string bytes = SerializeMStarIndex(index);
  DataGraph other = RandomGraph(3, 5, 2, 2);  // Far fewer nodes.
  EXPECT_FALSE(DeserializeMStarIndex(other, bytes).ok());
}

TEST(DiskMStarIndexTest, LoadsComponentsLazily) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(Q(g, "//root/site/auctions/auction/seller/person"));
  ASSERT_EQ(index.num_components(), 6u);

  std::string path = TempPath("mrx_disk_index_test.mrxs");
  ASSERT_TRUE(SaveMStarIndexToFile(index, path).ok());
  auto disk = DiskMStarIndex::Open(g, path);
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ(disk->num_components(), 6u);
  EXPECT_EQ(disk->components_loaded(), 0u);

  // A single-label query touches only I0.
  auto r0 = disk->QueryTopDown(Q(g, "//person"));
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(disk->components_loaded(), 1u);
  EXPECT_EQ(r0->answer, eval.Evaluate(Q(g, "//person")));

  // A length-1 query additionally pulls in I1.
  auto r2 = disk->QueryTopDown(Q(g, "//people/person"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(disk->components_loaded(), 2u);
  EXPECT_EQ(r2->answer, eval.Evaluate(Q(g, "//people/person")));

  // Re-running does not reload.
  ASSERT_TRUE(disk->QueryTopDown(Q(g, "//people/person")).ok());
  EXPECT_EQ(disk->components_loaded(), 2u);

  // The refined FUP needs every component and stays exact and precise.
  PathExpression fup = Q(g, "//root/site/auctions/auction/seller/person");
  auto rf = disk->QueryTopDown(fup);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(disk->components_loaded(), 6u);
  EXPECT_TRUE(rf->precise);
  EXPECT_EQ(rf->answer, eval.Evaluate(fup));
  std::remove(path.c_str());
}

TEST(DiskMStarIndexTest, NaiveLoadsOneComponent) {
  DataGraph g = MakeFigure3Graph();
  MStarIndex index(g);
  index.Refine(Q(g, "//r/a/b"));
  std::string path = TempPath("mrx_disk_naive_test.mrxs");
  ASSERT_TRUE(SaveMStarIndexToFile(index, path).ok());
  auto disk = DiskMStarIndex::Open(g, path);
  ASSERT_TRUE(disk.ok());
  auto r = disk->QueryNaive(Q(g, "//r/a/b"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk->components_loaded(), 1u);  // Only I2.
  EXPECT_EQ(r->answer, (std::vector<NodeId>{4}));
  std::remove(path.c_str());
}

TEST(DiskMStarIndexTest, MatchesInMemoryAnswersOnGeneratedData) {
  auto g = harness::BuildXMarkGraph(0.02);
  ASSERT_TRUE(g.ok());
  DataEvaluator eval(*g);
  MStarIndex index(*g);
  std::vector<PathExpression> queries;
  for (const char* text :
       {"//open_auction/seller/person", "//regions/africa/item",
        "//person/watches/watch/open_auction", "//item/incategory/category"}) {
    queries.push_back(Q(*g, text));
  }
  for (const auto& q : queries) index.Refine(q);
  std::string path = TempPath("mrx_disk_xmark_test.mrxs");
  ASSERT_TRUE(SaveMStarIndexToFile(index, path).ok());
  auto disk = DiskMStarIndex::Open(*g, path);
  ASSERT_TRUE(disk.ok());
  for (const auto& q : queries) {
    auto r = disk->QueryTopDown(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->answer, eval.Evaluate(q));
    EXPECT_EQ(r->answer, index.QueryTopDown(q).answer);
  }
  std::remove(path.c_str());
}

TEST(DiskMStarIndexTest, OpenRejectsGarbage) {
  std::string path = TempPath("mrx_disk_garbage_test.mrxs");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index container at all";
  }
  DataGraph g = MakeFigure3Graph();
  EXPECT_FALSE(DiskMStarIndex::Open(g, path).ok());
  EXPECT_FALSE(DiskMStarIndex::Open(g, TempPath("does_not_exist")).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrx::storage
