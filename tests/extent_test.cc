#include "index/extent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "index/extent_ops.h"
#include "mutate/incremental_maintainer.h"
#include "mutate/mutation.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace mrx {
namespace {

using ::mrx::testing::MakeFigure3Graph;

/// Restores the process-wide representation mode on scope exit, so a
/// failing assertion can't leak a forced mode into later tests.
class ScopedRepMode {
 public:
  explicit ScopedRepMode(ExtentRepMode mode) : saved_(GetExtentRepMode()) {
    SetExtentRepMode(mode);
  }
  ~ScopedRepMode() { SetExtentRepMode(saved_); }

 private:
  ExtentRepMode saved_;
};

constexpr ExtentRep kAllReps[] = {ExtentRep::kSortedVector,
                                  ExtentRep::kDeltaPacked,
                                  ExtentRep::kHybridBitmap};

// ---------------------------------------------------------------------------
// Satellite 3: GallopLowerBound bracket audit.
//
// The suspicion from the issue: after the doubling loop overshoots, the
// bracket [from + bound/2, from + bound + 1) is recomputed from `from`,
// which could be off by one at the container edges. The fuzz below
// cross-checks 10k random (v, from, key) triples — including from == 0,
// from == v.size(), keys below/above the whole range, and single-element
// vectors — against std::lower_bound over the same suffix. It found no
// discrepancy, pinning the bracket math as correct.
// ---------------------------------------------------------------------------

TEST(GallopLowerBoundFuzzTest, AgreesWithStdLowerBoundOn10kRandomTriples) {
  Rng rng(0x9a1107);
  for (int trial = 0; trial < 10000; ++trial) {
    // Sizes straddle the interesting regimes: empty-ish, tiny, and large
    // enough that the doubling loop runs several iterations.
    const size_t size = rng.Below(3) == 0 ? rng.Below(4) : rng.Below(512);
    std::vector<NodeId> v;
    v.reserve(size);
    NodeId next = static_cast<NodeId>(rng.Below(16));
    for (size_t i = 0; i < size; ++i) {
      v.push_back(next);
      next += 1 + static_cast<NodeId>(rng.Below(9));  // Strictly ascending.
    }
    const size_t from = rng.Below(v.size() + 1);  // May equal v.size().
    // Keys range from below v.front() to past v.back().
    const NodeId key = static_cast<NodeId>(
        rng.Below(v.empty() ? 32 : static_cast<uint64_t>(v.back()) + 16));

    const size_t got = extent_internal::GallopLowerBound(v, from, key);
    const size_t want = static_cast<size_t>(
        std::lower_bound(v.begin() + static_cast<ptrdiff_t>(from), v.end(),
                         key) -
        v.begin());
    ASSERT_EQ(got, want) << "trial " << trial << " size " << v.size()
                         << " from " << from << " key " << key;
  }
}

TEST(GallopLowerBoundFuzzTest, EdgeBrackets) {
  const std::vector<NodeId> v = {10, 20, 30, 40, 50};
  using extent_internal::GallopLowerBound;
  EXPECT_EQ(GallopLowerBound(v, 0, 5), 0u);    // Before front.
  EXPECT_EQ(GallopLowerBound(v, 0, 10), 0u);   // Exactly front.
  EXPECT_EQ(GallopLowerBound(v, 0, 55), 5u);   // Past back.
  EXPECT_EQ(GallopLowerBound(v, 4, 50), 4u);   // from at last element.
  EXPECT_EQ(GallopLowerBound(v, 5, 50), 5u);   // from == size.
  const std::vector<NodeId> one = {7};
  EXPECT_EQ(GallopLowerBound(one, 0, 6), 0u);
  EXPECT_EQ(GallopLowerBound(one, 0, 7), 0u);
  EXPECT_EQ(GallopLowerBound(one, 0, 8), 1u);
  const std::vector<NodeId> empty;
  EXPECT_EQ(GallopLowerBound(empty, 0, 3), 0u);
}

// ---------------------------------------------------------------------------
// Satellite 4: representation-equivalence property test.
//
// Every kernel, under every representation pair, must be byte-identical
// to the sorted-vector oracle after materialization. Extents are drawn
// from the density classes the heuristic distinguishes: sparse scatter
// (array chunks), dense scatter (bitmap chunks), clustered runs (run
// chunks / delta-packed), plus the degenerate empty / singleton /
// all-nodes shapes.
// ---------------------------------------------------------------------------

/// A sorted duplicate-free set shaped by `cls`:
///   0 sparse:  ids scattered over a wide universe (array chunks);
///   1 dense:   >50% occupancy of a narrow range (bitmap chunks);
///   2 runs:    a few contiguous intervals (run chunks, tiny deltas);
///   3 mixed:   a run block plus a sparse tail crossing chunk borders.
std::vector<NodeId> RandomExtent(Rng* rng, int cls) {
  std::vector<NodeId> v;
  switch (cls) {
    case 0: {
      const size_t n = 1 + rng->Below(400);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<NodeId>(rng->Below(1u << 20)));
      }
      break;
    }
    case 1: {
      const NodeId base = static_cast<NodeId>(rng->Below(1u << 18));
      const size_t span = 512 + rng->Below(2048);
      for (NodeId x = 0; x < span; ++x) {
        if (rng->Below(100) < 60) v.push_back(base + x);
      }
      break;
    }
    case 2: {
      NodeId cursor = static_cast<NodeId>(rng->Below(1u << 18));
      const size_t runs = 1 + rng->Below(6);
      for (size_t r = 0; r < runs; ++r) {
        const size_t len = 1 + rng->Below(300);
        for (size_t i = 0; i < len; ++i) v.push_back(cursor++);
        cursor += 2 + static_cast<NodeId>(rng->Below(5000));
      }
      break;
    }
    default: {
      // A run straddling a 64k chunk border plus scatter on both sides.
      const NodeId border = 1u << 16;
      for (NodeId x = border - 100; x < border + 100; ++x) v.push_back(x);
      const size_t n = rng->Below(200);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<NodeId>(rng->Below(1u << 18)));
      }
      break;
    }
  }
  SortUnique(&v);
  return v;
}

std::vector<NodeId> OracleIntersect(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<NodeId> OracleDifference(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// Checks every kernel flavor for (a, b) under every representation pair
/// against the plain-vector oracles.
void ExpectKernelsMatchOracle(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b,
                              const std::string& context) {
  const std::vector<NodeId> want_and = OracleIntersect(a, b);
  const std::vector<NodeId> want_sub = OracleDifference(a, b);
  for (ExtentRep ra : kAllReps) {
    const Extent ea = Extent::FromSortedAs(std::vector<NodeId>(a), ra);
    ASSERT_EQ(ea.Materialize(), a)
        << context << " lossy " << ExtentRepName(ra);
    // Extent × vector, both orders and both kernels.
    EXPECT_EQ(Intersect(ea, b), want_and)
        << context << " " << ExtentRepName(ra) << " ∩ vec";
    EXPECT_EQ(Intersect(b, ea), want_and)
        << context << " vec ∩ " << ExtentRepName(ra);
    EXPECT_EQ(Difference(ea, b), want_sub)
        << context << " " << ExtentRepName(ra) << " \\ vec";
    EXPECT_EQ(Difference(a, Extent::FromSortedAs(std::vector<NodeId>(b), ra)),
              want_sub)
        << context << " vec \\ " << ExtentRepName(ra);
    for (ExtentRep rb : kAllReps) {
      const Extent eb = Extent::FromSortedAs(std::vector<NodeId>(b), rb);
      EXPECT_EQ(Intersect(ea, eb).Materialize(), want_and)
          << context << " " << ExtentRepName(ra) << " ∩ "
          << ExtentRepName(rb);
      EXPECT_EQ(Difference(ea, eb).Materialize(), want_sub)
          << context << " " << ExtentRepName(ra) << " \\ "
          << ExtentRepName(rb);
    }
  }
}

TEST(ExtentEquivalenceTest, KernelsMatchOracleAcrossDensityClasses) {
  // 500 seeded extents per density class; consecutive extents of a class
  // are paired so both inputs share the class's shape, and each is also
  // paired against the previous class's last extent for cross-shape
  // coverage.
  Rng rng(0xe97e41);
  std::vector<NodeId> cross;
  for (int cls = 0; cls < 4; ++cls) {
    std::vector<NodeId> prev;
    for (int i = 0; i < 500; ++i) {
      std::vector<NodeId> cur = RandomExtent(&rng, cls);
      const std::string context =
          "class " + std::to_string(cls) + " i " + std::to_string(i);
      if (i % 2 == 1) ExpectKernelsMatchOracle(prev, cur, context);
      if (i == 250 && !cross.empty()) {
        ExpectKernelsMatchOracle(cross, cur, context + " cross");
      }
      prev = std::move(cur);
    }
    cross = prev;
  }
}

TEST(ExtentEquivalenceTest, DegenerateShapes) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> singleton = {42};
  std::vector<NodeId> all(4096);
  for (NodeId i = 0; i < all.size(); ++i) all[i] = i;  // "All nodes".
  const std::vector<std::vector<NodeId>> shapes = {empty, singleton, all,
                                                   {0}, {4095}, {0, 4095}};
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); ++j) {
      ExpectKernelsMatchOracle(shapes[i], shapes[j],
                               "shape " + std::to_string(i) + "x" +
                                   std::to_string(j));
    }
  }
}

TEST(ExtentEquivalenceTest, AccessorsAgreeAcrossReps) {
  Rng rng(0x51c6e5);
  for (int cls = 0; cls < 4; ++cls) {
    const std::vector<NodeId> v = RandomExtent(&rng, cls);
    for (ExtentRep rep : kAllReps) {
      const Extent e = Extent::FromSortedAs(std::vector<NodeId>(v), rep);
      ASSERT_EQ(e.size(), v.size());
      ASSERT_EQ(e.front(), v.front());
      ASSERT_EQ(e.back(), v.back());
      // Iterator decode matches the bulk decode.
      std::vector<NodeId> iterated;
      for (NodeId x : e) iterated.push_back(x);
      EXPECT_EQ(iterated, v);
      std::vector<NodeId> appended;
      e.AppendTo(&appended);
      EXPECT_EQ(appended, v);
      // Membership probes, both hits and near-misses.
      for (size_t i = 0; i < v.size(); i += 1 + v.size() / 64) {
        EXPECT_TRUE(e.Contains(v[i]));
      }
      EXPECT_FALSE(e.Contains(v.back() + 1));
      if (v.front() > 0) EXPECT_FALSE(e.Contains(v.front() - 1));
      // Logical equality is representation-independent.
      EXPECT_EQ(e, Extent::FromSorted(std::vector<NodeId>(v)));
      EXPECT_EQ(e, v);
    }
  }
}

TEST(ExtentEquivalenceTest, ForcedModeGovernsConstruction) {
  std::vector<NodeId> v;
  for (NodeId i = 0; i < 2000; ++i) v.push_back(i * 3);
  {
    ScopedRepMode force(ExtentRepMode::kForceDeltaPacked);
    EXPECT_EQ(Extent::FromSorted(std::vector<NodeId>(v)).rep(),
              ExtentRep::kDeltaPacked);
  }
  {
    ScopedRepMode force(ExtentRepMode::kForceHybridBitmap);
    EXPECT_EQ(Extent::FromSorted(std::vector<NodeId>(v)).rep(),
              ExtentRep::kHybridBitmap);
  }
  {
    ScopedRepMode force(ExtentRepMode::kForceSortedVector);
    EXPECT_EQ(Extent::FromSorted(std::vector<NodeId>(v)).rep(),
              ExtentRep::kSortedVector);
  }
  EXPECT_EQ(GetExtentRepMode(), ExtentRepMode::kAuto);
}

TEST(ExtentEquivalenceTest, ParseRepModeSpellings) {
  EXPECT_EQ(ParseExtentRepMode("auto"), ExtentRepMode::kAuto);
  EXPECT_EQ(ParseExtentRepMode("vector"), ExtentRepMode::kForceSortedVector);
  EXPECT_EQ(ParseExtentRepMode("delta"), ExtentRepMode::kForceDeltaPacked);
  EXPECT_EQ(ParseExtentRepMode("hybrid"), ExtentRepMode::kForceHybridBitmap);
  EXPECT_EQ(ParseExtentRepMode("bogus"), std::nullopt);
}

/// The maintainer's splice paths (CSR level rebuilds, static-spec export)
/// must produce logically identical partitions whatever representation new
/// extents are sealed into. Runs the same mutation trace under every
/// forced mode and compares the exported specs against the vector-forced
/// run — Extent equality is logical, so this catches any representation
/// that decodes differently after a splice.
// ---------------------------------------------------------------------------
// Auto-representation heuristic (retuned for the vectorized kernels).
// ---------------------------------------------------------------------------

TEST(AutoRepHeuristicTest, SmallExtentsStayVector) {
  ScopedRepMode mode(ExtentRepMode::kAuto);
  std::vector<NodeId> v;
  for (NodeId x = 0; x < 32; ++x) v.push_back(x * 3);
  EXPECT_EQ(Extent::FromSorted(std::move(v)).rep(),
            ExtentRep::kSortedVector);
}

TEST(AutoRepHeuristicTest, HotClusteredExtentsPickHybrid) {
  // Regression for the 500k-tier inversion: large clustered extents used
  // to auto-select delta because it is the smallest encoding, leaving the
  // hot intersection path on the slow per-element decode. The retuned
  // heuristic spends the extra space on hybrid once an extent is both hot
  // (size >= 2048) and still a real compression win.
  ScopedRepMode mode(ExtentRepMode::kAuto);
  Rng rng(0x500137);
  std::vector<NodeId> v;
  for (NodeId x = 0; v.size() < 10000; ++x) {
    if (rng.Below(10) < 7) v.push_back(x);
  }
  const Extent a = Extent::FromSorted(std::vector<NodeId>(v));
  EXPECT_EQ(a.rep(), ExtentRep::kHybridBitmap);
  // The inversion shape: delta genuinely is the smaller encoding here, so
  // this choice is deliberately speed-over-space.
  const Extent d =
      Extent::FromSortedAs(std::vector<NodeId>(v), ExtentRep::kDeltaPacked);
  EXPECT_LT(d.payload()->physical_bytes(), a.payload()->physical_bytes());
}

TEST(AutoRepHeuristicTest, MidSizeScatteredClustersPickDelta) {
  // Below the hot threshold with chunk-unfriendly spacing (array chunks at
  // 2 B/element beat nothing), delta remains the winner.
  ScopedRepMode mode(ExtentRepMode::kAuto);
  Rng rng(0xd317a);
  std::vector<NodeId> v;
  NodeId cursor = 0;
  for (int i = 0; i < 500; ++i) {
    cursor += 150 + static_cast<NodeId>(rng.Below(100));
    v.push_back(cursor);
  }
  EXPECT_EQ(Extent::FromSorted(std::move(v)).rep(),
            ExtentRep::kDeltaPacked);
}

TEST(AutoRepHeuristicTest, IncompressibleExtentsStayVector) {
  // One huge gap forces wide delta fields for the whole stream, and one
  // element per bitmap chunk makes hybrid pure overhead: neither beats the
  // plain vector, so auto keeps it.
  ScopedRepMode mode(ExtentRepMode::kAuto);
  std::vector<NodeId> v;
  for (NodeId i = 0; i < 99; ++i) v.push_back(i * 70000);
  v.push_back(98u * 70000 + (1u << 31));
  EXPECT_EQ(Extent::FromSorted(std::move(v)).rep(),
            ExtentRep::kSortedVector);
}

// ---------------------------------------------------------------------------
// The kDeltaPacked block skip index.
// ---------------------------------------------------------------------------

TEST(DeltaBlockIndexTest, BlockLastMatchesPerBlockMaxima) {
  Rng rng(0xb10c);
  for (int cls = 0; cls < 4; ++cls) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::vector<NodeId> v = RandomExtent(&rng, cls);
      if (v.empty()) continue;
      const Extent e = Extent::FromSortedAs(std::vector<NodeId>(v),
                                            ExtentRep::kDeltaPacked);
      const auto& p = *e.payload();
      if (p.delta_bits == 0) {
        // Contiguous run: the index is arithmetic, not materialized.
        EXPECT_TRUE(p.block_last.empty());
        continue;
      }
      const size_t blocks =
          (v.size() + extent_internal::kDeltaBlock - 1) /
          extent_internal::kDeltaBlock;
      ASSERT_EQ(p.block_last.size(), blocks);
      for (size_t b = 0; b < blocks; ++b) {
        const size_t end =
            std::min(v.size(), (b + 1) * extent_internal::kDeltaBlock);
        EXPECT_EQ(p.block_last[b], v[end - 1]) << "block " << b;
      }
    }
  }
}

TEST(DeltaBlockIndexTest, DecodeDeltaBlockMatchesMaterializeSlices) {
  Rng rng(0xdecb);
  for (int cls = 0; cls < 4; ++cls) {
    const std::vector<NodeId> v = RandomExtent(&rng, cls);
    const Extent e = Extent::FromSortedAs(std::vector<NodeId>(v),
                                          ExtentRep::kDeltaPacked);
    const auto& p = *e.payload();
    if (p.delta_bits == 0) continue;
    NodeId buf[extent_internal::kDeltaBlock];
    const size_t blocks = p.block_last.size();
    for (size_t b = 0; b < blocks; ++b) {
      const uint32_t n = extent_internal::DecodeDeltaBlock(p, b, buf);
      const size_t begin = b * extent_internal::kDeltaBlock;
      ASSERT_EQ(n, std::min(v.size(), begin + extent_internal::kDeltaBlock) -
                       begin);
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], v[begin + i]) << "block " << b << " slot " << i;
      }
    }
  }
}

TEST(DeltaBlockIndexTest, FinalizeRebuildsIndexFromPackedStream) {
  // The storage decode path fills base/delta_bits/packed/size and derives
  // block_last via FinalizeDeltaPayload; the rebuilt index must match the
  // one built at encode time, and an Extent over the rebuilt payload must
  // answer queries correctly.
  Rng rng(0xf17a1);
  const std::vector<NodeId> v = RandomExtent(&rng, 3);
  const Extent e = Extent::FromSortedAs(std::vector<NodeId>(v),
                                        ExtentRep::kDeltaPacked);
  auto copy = std::make_shared<extent_internal::ExtentPayload>(*e.payload());
  copy->block_last.clear();
  extent_internal::FinalizeDeltaPayload(copy.get());
  EXPECT_EQ(copy->block_last, e.payload()->block_last);

  const Extent rebuilt = Extent::FromPayload(copy);
  EXPECT_EQ(rebuilt.Materialize(), v);
  EXPECT_EQ(rebuilt.back(), v.back());
  for (size_t i = 0; i < v.size(); i += 7) {
    EXPECT_TRUE(rebuilt.Contains(v[i]));
  }
  EXPECT_FALSE(rebuilt.Contains(v.back() + 1));
}

TEST(ExtentEquivalenceTest, MaintainerSplicePathsAgreeUnderForcedReps) {
  const mutate::MutationBatch batch = {
      mutate::Mutation::AppendLeaf(1, "b"),
      mutate::Mutation::AppendLeaf(2, "c"),
      mutate::Mutation::AddRef(3, 4),
      mutate::Mutation::AppendLeaf(0, "a"),
  };
  auto run = [&](ExtentRepMode mode) {
    ScopedRepMode force(mode);
    const DataGraph g = MakeFigure3Graph();
    mutate::MaintainerOptions options;
    options.k_max = 3;
    mutate::IncrementalMaintainer m(g, options);
    auto receipt = m.Apply(batch);
    EXPECT_TRUE(receipt.ok()) << receipt.status();
    return m.ExportStaticSpecs();
  };

  const auto want = run(ExtentRepMode::kForceSortedVector);
  for (ExtentRepMode mode :
       {ExtentRepMode::kAuto, ExtentRepMode::kForceDeltaPacked,
        ExtentRepMode::kForceHybridBitmap}) {
    const auto got = run(mode);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].extents, want[i].extents) << "component " << i;
      EXPECT_EQ(got[i].ks, want[i].ks) << "component " << i;
      EXPECT_EQ(got[i].supernodes, want[i].supernodes) << "component " << i;
    }
  }
}

}  // namespace
}  // namespace mrx
