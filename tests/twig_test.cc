#include <gtest/gtest.h>

#include "index/twig_eval.h"
#include "query/data_evaluator.h"
#include "query/twig.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure1Graph;
using mrx::testing::MakeGraph;
using mrx::testing::RandomGraph;

TwigQuery T(const DataGraph& g, std::string_view text) {
  auto t = TwigQuery::Parse(text, g.symbols());
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(TwigParseTest, PlainPathHasNoPredicates) {
  DataGraph g = MakeFigure1Graph();
  TwigQuery t = T(g, "//site/people/person");
  EXPECT_FALSE(t.HasPredicates());
  EXPECT_EQ(t.ToString(g.symbols()), "//site/people/person");
  EXPECT_EQ(t.TrunkExpression().ToString(g.symbols()),
            "//site/people/person");
}

TEST(TwigParseTest, PredicatesAndAxes) {
  DataGraph g = MakeFigure1Graph();
  TwigQuery t = T(g, "/site[regions//item]/auctions/auction[seller]");
  EXPECT_TRUE(t.HasPredicates());
  EXPECT_TRUE(t.anchored());
  // ToString canonicalizes predicate chains to nested brackets
  // (regions//item ≡ regions[//item] under existential AND semantics).
  EXPECT_EQ(t.ToString(g.symbols()),
            "/site[regions[//item]]/auctions/auction[seller]");
  EXPECT_EQ(t.TrunkExpression().ToString(g.symbols()),
            "/site/auctions/auction");
}

TEST(TwigParseTest, NestedPredicates) {
  DataGraph g = MakeFigure1Graph();
  TwigQuery t = T(g, "//auction[bidder[person]]/item");
  EXPECT_TRUE(t.HasPredicates());
  EXPECT_EQ(t.ToString(g.symbols()), "//auction[bidder[person]]/item");
}

TEST(TwigParseTest, Errors) {
  DataGraph g = MakeFigure1Graph();
  EXPECT_FALSE(TwigQuery::Parse("", g.symbols()).ok());
  EXPECT_FALSE(TwigQuery::Parse("//a[b", g.symbols()).ok());
  EXPECT_FALSE(TwigQuery::Parse("//a]b", g.symbols()).ok());
  EXPECT_FALSE(TwigQuery::Parse("//a[[b]]", g.symbols()).ok());
}

TEST(TwigEvalTest, PredicateFiltersTrunk) {
  //        r
  //      /   \
  //     a     a
  //    / \     \
  //   b   c     c
  // //a[b]/c should return only the first a's c.
  DataGraph g = MakeGraph({"r", "a", "a", "b", "c", "c"},
                          {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
  EXPECT_EQ(EvaluateTwig(g, T(g, "//a[b]/c")), (std::vector<NodeId>{4}));
  EXPECT_EQ(EvaluateTwig(g, T(g, "//a/c")), (std::vector<NodeId>{4, 5}));
}

TEST(TwigEvalTest, PredicateOnOutputNode) {
  DataGraph g = MakeGraph({"r", "a", "a", "b"}, {{0, 1}, {0, 2}, {1, 3}});
  // Only the a with a b child matches.
  EXPECT_EQ(EvaluateTwig(g, T(g, "//r/a[b]")), (std::vector<NodeId>{1}));
}

TEST(TwigEvalTest, DescendantPredicate) {
  DataGraph g = MakeGraph({"r", "a", "x", "b", "a"},
                          {{0, 1}, {1, 2}, {2, 3}, {0, 4}});
  // a(1) has b deep below (via x); a(4) has none.
  EXPECT_EQ(EvaluateTwig(g, T(g, "//a[//b]")), (std::vector<NodeId>{1}));
  EXPECT_TRUE(EvaluateTwig(g, T(g, "//a[b]")).empty());
}

TEST(TwigEvalTest, MultiplePredicatesAreConjunctive) {
  DataGraph g = MakeGraph({"r", "a", "a", "b", "c", "b"},
                          {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
  EXPECT_EQ(EvaluateTwig(g, T(g, "//r/a[b][c]")), (std::vector<NodeId>{1}));
  EXPECT_EQ(EvaluateTwig(g, T(g, "//r/a[b]")),
            (std::vector<NodeId>{1, 2}));
}

TEST(TwigEvalTest, Figure1Scenarios) {
  DataGraph g = MakeFigure1Graph();
  // Auctions that have a bidder; their item references.
  EXPECT_EQ(EvaluateTwig(g, T(g, "//auction[bidder]/item")),
            (std::vector<NodeId>{19, 20}));
  // Persons referenced by a seller of an auction that also has a bidder.
  EXPECT_EQ(EvaluateTwig(g, T(g, "//auction[bidder]/seller/person")),
            (std::vector<NodeId>{7, 9}));
  // Anchored trunk.
  EXPECT_EQ(EvaluateTwig(g, T(g, "/root/site[regions]/people/person")),
            (std::vector<NodeId>{7, 8, 9}));
  // Predicate that never matches.
  EXPECT_TRUE(EvaluateTwig(g, T(g, "//auction[regions]/item")).empty());
}

TEST(TwigEvalTest, PlainTrunkMatchesPathEvaluation) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  for (const char* text :
       {"//site/people/person", "//auction/seller/person",
        "//site//item", "/root/site/regions"}) {
    TwigQuery t = T(g, text);
    auto p = PathExpression::Parse(text, g.symbols());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(EvaluateTwig(g, t), eval.Evaluate(*p)) << text;
  }
}

TEST(TwigIndexEvalTest, MatchesGroundTruth) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  index.Refine(*PathExpression::Parse("//auctions/auction/item",
                                      g.symbols()));
  for (const char* text :
       {"//auction[bidder]/item", "//auction[bidder]/seller/person",
        "//site[regions//item]/people/person", "//auction/item",
        "//person"}) {
    TwigQuery t = T(g, text);
    QueryResult r = EvaluateTwigWithIndex(index, t, eval);
    EXPECT_EQ(r.answer, EvaluateTwig(g, t)) << text;
    if (t.HasPredicates()) EXPECT_FALSE(r.precise) << text;
  }
}

TEST(TwigIndexEvalTest, RandomGraphSweep) {
  for (uint64_t seed : {601, 602, 603}) {
    DataGraph g = RandomGraph(seed, 40, 4, 20);
    DataEvaluator eval(g);
    MStarIndex index(g);
    const SymbolTable& symbols = g.symbols();
    // All twigs of the form //a[b]/c over the label alphabet.
    for (LabelId a = 0; a < symbols.size(); ++a) {
      for (LabelId b = 0; b < symbols.size(); ++b) {
        for (LabelId c = 0; c < symbols.size(); ++c) {
          std::string text = "//" + symbols.Name(a) + "[" +
                             symbols.Name(b) + "]/" + symbols.Name(c);
          TwigQuery t = T(g, text);
          QueryResult r = EvaluateTwigWithIndex(index, t, eval);
          ASSERT_EQ(r.answer, EvaluateTwig(g, t)) << seed << " " << text;
        }
      }
    }
  }
}

TEST(TwigIndexEvalTest, AnchoredTwig) {
  DataGraph g = MakeFigure1Graph();
  DataEvaluator eval(g);
  MStarIndex index(g);
  TwigQuery t = T(g, "/root/site[people]/auctions/auction[seller]");
  QueryResult r = EvaluateTwigWithIndex(index, t, eval);
  EXPECT_EQ(r.answer, EvaluateTwig(g, t));
  EXPECT_EQ(r.answer, (std::vector<NodeId>{10, 11}));
}

}  // namespace
}  // namespace mrx
