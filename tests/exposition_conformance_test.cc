// Exposition-conformance tests (ISSUE 7 satellite): the Prometheus text
// and JSONL emitters must stay consumable by real scrapers — metric names
// legal and sorted, counters monotone across snapshots, every JSONL line
// strict JSON — and the new diagnostics outputs (flight recorder, slow
// query log, explain records) must round-trip through the strict parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_diag.h"
#include "obs/slow_query_log.h"
#include "tests/json_check.h"

namespace mrx::obs {
namespace {

using mrx::testing::ParseJson;

/// [a-zA-Z_:][a-zA-Z0-9_:]* — the Prometheus metric-name grammar.
bool IsLegalMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto legal_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!legal_first(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!legal_first(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

MetricsRegistry& SeededRegistry() {
  static MetricsRegistry* const reg = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("mrx_cost_extent_elems_scanned_total")->Increment(130);
    r->GetCounter("mrx_cost_validation_checks_total")->Increment(4);
    r->GetCounter("mrx_slow_queries_total")->Increment(2);
    r->GetCounter("mrx_watchdog_stalls_total")->Increment(1);
    r->GetCounter("mrx_trace_dropped_total")->Increment(0);
    r->GetGauge("mrx_server_queue_depth")->Set(3);
    r->GetHistogram("mrx_query_latency_ns")->Record(1000);
    return r;
  }();
  return *reg;
}

TEST(ExpositionConformanceTest, AllEmittedNamesAreLegalAndSorted) {
  MetricsSnapshot snap = SeededRegistry().Snapshot();
  std::vector<std::string> names;
  for (const auto& c : snap.counters) names.push_back(c.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& g : snap.gauges) names.push_back(g.name);
  for (const auto& h : snap.histograms) names.push_back(h.name);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsLegalMetricName(name)) << name;
    EXPECT_EQ(name.rfind("mrx_", 0), 0u) << name;  // Project prefix.
  }
}

TEST(ExpositionConformanceTest, PrometheusLinesMatchTheGrammar) {
  std::ostringstream os;
  WritePrometheusText(SeededRegistry().Snapshot(), os);
  std::istringstream lines(os.str());
  std::string line;
  std::string last_help_or_type_name;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());  // No blank lines in the exposition.
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" with a known kind.
      std::istringstream parts(line);
      std::string hash, keyword, name, kind;
      parts >> hash >> keyword >> name >> kind;
      EXPECT_EQ(keyword, "TYPE") << line;
      EXPECT_TRUE(IsLegalMetricName(name)) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "summary")
          << line;
      continue;
    }
    // Sample line: name[{labels}] value — the value must parse as a number.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_TRUE(ParseJson(value).has_value() &&
                ParseJson(value)->is_number())
        << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    EXPECT_TRUE(IsLegalMetricName(name)) << line;
  }
}

TEST(ExpositionConformanceTest, CountersAreMonotoneAcrossSnapshots) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mrx_mono_total");
  uint64_t last = 0;
  for (int round = 0; round < 5; ++round) {
    c->Increment(static_cast<uint64_t>(round));
    MetricsSnapshot snap = reg.Snapshot();
    const uint64_t now = snap.CounterValue("mrx_mono_total");
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_EQ(last, 0u + 1 + 2 + 3 + 4);
}

TEST(ExpositionConformanceTest, JsonlSnapshotIsStrictPerLine) {
  std::ostringstream os;
  WriteJsonlSnapshot(SeededRegistry().Snapshot(), os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object()) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 7);  // Every seeded instrument appears.
}

TEST(ExpositionConformanceTest, FlightRecorderJsonlIsStrictPerLine) {
  FlightRecorder recorder({.events_per_thread = 32});
  recorder.Record(FlightEventType::kQueryStart, 1, 2);
  recorder.Record(FlightEventType::kStrategyDecision, 7, 0, 3);
  recorder.Record(FlightEventType::kSlowQuery, 5000, 42);
  std::ostringstream os;
  recorder.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    for (const char* key : {"ts_ns", "thread", "code", "a", "b"}) {
      const auto* field = doc->Find(key);
      ASSERT_NE(field, nullptr) << key;
      EXPECT_TRUE(field->is_number()) << key;
    }
    const auto* type = doc->Find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_TRUE(type->is_string());  // Symbolic names, not raw enums.
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
}

TEST(ExpositionConformanceTest, SlowQueryLogJsonlIsStrictPerLine) {
  SlowQueryLog log;
  QueryDiag d;
  d.query = "//item[\"quoted\\name\"]";  // Needs escaping to stay strict.
  d.strategy = "hybrid";
  d.considered = {{"naive", 1, true, false}, {"hybrid", 2, true, true}};
  d.latency_ns = 99;
  log.Append(d);
  std::ostringstream os;
  log.WriteJsonl(os);
  auto doc = ParseJson(os.str().substr(0, os.str().find('\n')));
  ASSERT_TRUE(doc.has_value()) << os.str();
  EXPECT_EQ(doc->Find("query")->string_value, "//item[\"quoted\\name\"]");
  EXPECT_EQ(doc->Find("strategy")->string_value, "hybrid");
  EXPECT_EQ(doc->Find("considered")->array.size(), 2u);
}

TEST(ExpositionConformanceTest, ExplainJsonAndPrometheusShareNoConflicts) {
  // The diagnostics counters introduced by the explain layer must appear
  // in the exposition with their documented names (docs/OBSERVABILITY.md).
  std::ostringstream os;
  WritePrometheusText(SeededRegistry().Snapshot(), os);
  const std::string text = os.str();
  for (const char* name :
       {"mrx_cost_extent_elems_scanned_total", "mrx_slow_queries_total",
        "mrx_watchdog_stalls_total", "mrx_trace_dropped_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace mrx::obs
