#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "index/extent.h"
#include "index/extent_kernels.h"
#include "index/extent_ops.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace mrx {
namespace {

/// \file
/// Differential fuzz suite for the SIMD kernel dispatch (ISSUE 10): every
/// vectorized primitive and every extent kernel pair must produce outputs
/// byte-identical to the forced-scalar build. On hardware without SSE4.2/
/// AVX2 the forced levels clamp to scalar and the comparisons degenerate
/// to scalar-vs-scalar — still valid, just not informative; CI runs the
/// suite on AVX2 hardware and once more under MRX_SIMD=scalar.

/// Restores the SIMD override on scope exit so a failing assertion cannot
/// leak a forced level into later tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

/// The levels to test against scalar: every level the hardware supports.
std::vector<SimdLevel> VectorLevels() {
  std::vector<SimdLevel> levels;
  if (DetectedSimdLevel() >= SimdLevel::kSSE42) {
    levels.push_back(SimdLevel::kSSE42);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAVX2) {
    levels.push_back(SimdLevel::kAVX2);
  }
  return levels;
}

// ---------------------------------------------------------------------------
// Primitive level: each extent_kernels entry point, scalar vs each SIMD
// build, on seeded random word blocks / packed streams. Sizes sweep the
// vector remainder paths (n % 4, n % 8 != 0) as well as the full-chunk
// 1024-word shape the hybrid kernels use.
// ---------------------------------------------------------------------------

TEST(SimdKernelFuzzTest, WordKernelsMatchScalarOn10kBlocks) {
  using extent_internal::AndNotWordsPopcount;
  using extent_internal::AndWordsPopcount;
  using extent_internal::PopcountWords;
  const std::vector<SimdLevel> levels = VectorLevels();
  Rng rng(0x51edb01);
  for (int trial = 0; trial < 10000; ++trial) {
    const size_t n = trial % 3 == 0 ? 1024 : 1 + rng.Below(64);
    std::vector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      // Mix densities: all-zero, all-one and random words all occur.
      const uint64_t r = rng.Next();
      a[i] = rng.Below(8) == 0 ? 0 : (rng.Below(8) == 1 ? ~uint64_t{0} : r);
      b[i] = rng.Below(8) == 0 ? 0 : rng.Next();
    }
    std::vector<uint64_t> out_scalar(n), out_simd(n);
    uint32_t and_scalar, andnot_scalar, pop_scalar;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      and_scalar = AndWordsPopcount(a.data(), b.data(), out_scalar.data(), n);
      pop_scalar = PopcountWords(a.data(), n);
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      const uint32_t count =
          AndWordsPopcount(a.data(), b.data(), out_simd.data(), n);
      ASSERT_EQ(count, and_scalar) << "AND trial " << trial;
      ASSERT_EQ(out_simd, out_scalar) << "AND trial " << trial;
      ASSERT_EQ(PopcountWords(a.data(), n), pop_scalar)
          << "POPCNT trial " << trial;
    }
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      andnot_scalar =
          AndNotWordsPopcount(a.data(), b.data(), out_scalar.data(), n);
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      const uint32_t count =
          AndNotWordsPopcount(a.data(), b.data(), out_simd.data(), n);
      ASSERT_EQ(count, andnot_scalar) << "ANDNOT trial " << trial;
      ASSERT_EQ(out_simd, out_scalar) << "ANDNOT trial " << trial;
    }
  }
}

TEST(SimdKernelFuzzTest, EmitWordBits16MatchesScalarOn10kBlocks) {
  using extent_internal::EmitWordBits16;
  const std::vector<SimdLevel> levels = VectorLevels();
  Rng rng(0xb17e217);
  for (int trial = 0; trial < 10000; ++trial) {
    const size_t n = 1 + rng.Below(40);
    std::vector<uint64_t> words(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Below(4)) {
        case 0: words[i] = 0; break;
        case 1: words[i] = ~uint64_t{0}; break;
        case 2: words[i] = rng.Next() & rng.Next() & rng.Next(); break;
        default: words[i] = rng.Next(); break;
      }
    }
    // The emitter contract: 8 writable slots past the true count.
    std::vector<uint16_t> out_scalar(n * 64 + 8), out_simd(n * 64 + 8);
    uint32_t count_scalar;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      count_scalar = EmitWordBits16(words.data(), n, out_scalar.data());
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      const uint32_t count = EmitWordBits16(words.data(), n, out_simd.data());
      ASSERT_EQ(count, count_scalar) << "trial " << trial;
      // Only the true count is contractual — the slack slots may differ.
      ASSERT_TRUE(std::equal(out_scalar.begin(), out_scalar.begin() + count,
                             out_simd.begin()))
          << "trial " << trial;
    }
  }
}

TEST(SimdKernelFuzzTest, IntersectU16MatchesScalarOn10kPairs) {
  using extent_internal::IntersectU16;
  const std::vector<SimdLevel> levels = VectorLevels();
  Rng rng(0x5e7a15e);
  for (int trial = 0; trial < 10000; ++trial) {
    // Sorted duplicate-free u16 sets whose sizes sweep the 8-lane remainder
    // paths; overlapping windows so matches (including value 0, which the
    // explicit-length STTNI form must treat as a member) actually occur.
    auto make = [&rng](uint32_t span) {
      std::vector<uint16_t> v;
      const uint32_t base = rng.Below(4) == 0 ? 0 : rng.Below(65536 - span);
      const size_t n = rng.Below(70);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<uint16_t>(base + rng.Below(span)));
      }
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };
    const uint32_t span = 1 + rng.Below(trial % 2 == 0 ? 128 : 4096);
    const std::vector<uint16_t> a = make(span);
    const std::vector<uint16_t> b = make(span);
    std::vector<uint16_t> out_scalar(a.size() + 8), out_simd(a.size() + 8);
    uint32_t count_scalar;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      count_scalar = IntersectU16(a.data(), a.size(), b.data(), b.size(),
                                  out_scalar.data());
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      const uint32_t count =
          IntersectU16(a.data(), a.size(), b.data(), b.size(), out_simd.data());
      ASSERT_EQ(count, count_scalar) << "trial " << trial;
      // Only the true count is contractual — the slack slots may differ.
      ASSERT_TRUE(std::equal(out_scalar.begin(), out_scalar.begin() + count,
                             out_simd.begin()))
          << "trial " << trial;
    }
  }
}

TEST(SimdKernelFuzzTest, PrefixSumAndUnpackMatchScalarOn10kStreams) {
  using extent_internal::PrefixSumU32;
  using extent_internal::UnpackFieldsU32;
  const std::vector<SimdLevel> levels = VectorLevels();
  Rng rng(0xdec0de5);
  for (int trial = 0; trial < 10000; ++trial) {
    const uint8_t bits = static_cast<uint8_t>(1 + rng.Below(32));
    const size_t count = 1 + rng.Below(200);
    const uint64_t mask =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    std::vector<uint64_t> fields(count);
    for (auto& f : fields) f = rng.Next() & mask;
    // Pack the fields little-endian, the ExtentPayload layout.
    std::vector<uint64_t> packed((count * bits + 63) / 64 + 1, 0);
    size_t bit = 0;
    for (const uint64_t f : fields) {
      packed[bit >> 6] |= f << (bit & 63);
      if ((bit & 63) + bits > 64) packed[(bit >> 6) + 1] |= f >> (64 - (bit & 63));
      bit += bits;
    }
    const size_t from = rng.Below(count);
    const size_t take = 1 + rng.Below(count - from);
    const uint32_t add = static_cast<uint32_t>(rng.Below(3));
    std::vector<uint32_t> out_scalar(take), out_simd(take);
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      UnpackFieldsU32(packed.data(), bits, from, take, add, out_scalar.data());
      PrefixSumU32(out_scalar.data(), take, static_cast<uint32_t>(trial));
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      UnpackFieldsU32(packed.data(), bits, from, take, add, out_simd.data());
      PrefixSumU32(out_simd.data(), take, static_cast<uint32_t>(trial));
      ASSERT_EQ(out_simd, out_scalar)
          << "trial " << trial << " bits " << int{bits} << " from " << from;
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-pair level: Intersect / Difference / Overlaps / IntersectMany over
// every representation pair, forced scalar vs forced SIMD. The shapes bias
// toward dense chunks (bitmap kind) so the word kernels and the bit
// emitter actually run, and toward clustered ids so delta blocks skip.
// ---------------------------------------------------------------------------

std::vector<NodeId> RandomSet(Rng* rng) {
  std::vector<NodeId> v;
  switch (rng->Below(4)) {
    case 0: {  // Dense span: bitmap chunks, small deltas.
      const NodeId base = static_cast<NodeId>(rng->Below(1u << 17));
      const size_t span = 4096 + rng->Below(8192);
      for (NodeId x = 0; x < span; ++x) {
        if (rng->Below(100) < 70) v.push_back(base + x);
      }
      break;
    }
    case 1: {  // Sparse scatter: array chunks, wide deltas.
      const size_t n = 1 + rng->Below(600);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<NodeId>(rng->Below(1u << 20)));
      }
      break;
    }
    case 2: {  // Clustered runs with block-sized gaps.
      NodeId cursor = static_cast<NodeId>(rng->Below(1u << 16));
      for (size_t r = 0, runs = 1 + rng->Below(8); r < runs; ++r) {
        for (size_t i = 0, len = 1 + rng->Below(500); i < len; ++i) {
          v.push_back(cursor++);
        }
        cursor += 1 + static_cast<NodeId>(rng->Below(1u << 15));
      }
      break;
    }
    default: {  // Chunk-border straddle.
      const NodeId border = static_cast<NodeId>((1 + rng->Below(3)) << 16);
      for (NodeId x = border - 200; x < border + 200; ++x) {
        if (rng->Below(3) != 0) v.push_back(x);
      }
      break;
    }
  }
  SortUnique(&v);
  return v;
}

TEST(SimdExtentFuzzTest, KernelPairsMatchScalarAcrossRepPairs) {
  constexpr ExtentRep kReps[] = {ExtentRep::kSortedVector,
                                 ExtentRep::kDeltaPacked,
                                 ExtentRep::kHybridBitmap};
  const std::vector<SimdLevel> levels = VectorLevels();
  Rng rng(0xacce1e0);
  // 130 seeded pairs x 9 rep pairs x (2 set ops + overlap + k-way) ≈ 4.7k
  // kernel-pair cases per SIMD level on top of the 30k primitive trials.
  for (int trial = 0; trial < 130; ++trial) {
    const std::vector<NodeId> a = RandomSet(&rng);
    const std::vector<NodeId> b = RandomSet(&rng);
    for (ExtentRep ra : kReps) {
      const Extent ea = Extent::FromSortedAs(std::vector<NodeId>(a), ra);
      for (ExtentRep rb : kReps) {
        const Extent eb = Extent::FromSortedAs(std::vector<NodeId>(b), rb);
        std::vector<NodeId> and_scalar, sub_scalar;
        bool over_scalar;
        {
          ScopedSimdLevel force(SimdLevel::kScalar);
          and_scalar = Intersect(ea, eb).Materialize();
          sub_scalar = Difference(ea, eb).Materialize();
          over_scalar = Overlaps(ea, eb);
        }
        EXPECT_EQ(over_scalar, !and_scalar.empty());
        for (SimdLevel level : levels) {
          ScopedSimdLevel force(level);
          const std::string ctx = "trial " + std::to_string(trial) + " " +
                                  std::string(ExtentRepName(ra)) + "x" +
                                  ExtentRepName(rb) + " @" +
                                  SimdLevelName(level);
          ASSERT_EQ(Intersect(ea, eb).Materialize(), and_scalar) << ctx;
          ASSERT_EQ(Difference(ea, eb).Materialize(), sub_scalar) << ctx;
          ASSERT_EQ(Overlaps(ea, eb), over_scalar) << ctx;
        }
      }
    }
    // k-way: 3 operands across mixed reps, scalar vs SIMD.
    const std::vector<NodeId> c = RandomSet(&rng);
    const Extent e0 = Extent::FromSortedAs(std::vector<NodeId>(a),
                                           kReps[trial % 3]);
    const Extent e1 = Extent::FromSortedAs(std::vector<NodeId>(b),
                                           kReps[(trial + 1) % 3]);
    const Extent e2 = Extent::FromSortedAs(std::vector<NodeId>(c),
                                           kReps[(trial + 2) % 3]);
    std::vector<NodeId> many_scalar;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      many_scalar = IntersectMany({&e0, &e1, &e2}).Materialize();
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel force(level);
      ASSERT_EQ(IntersectMany({&e0, &e1, &e2}).Materialize(), many_scalar)
          << "k-way trial " << trial << " @" << SimdLevelName(level);
    }
  }
}

TEST(SimdDispatchTest, LevelsClampToHardwareAndParse) {
  EXPECT_LE(ActiveSimdLevel(), DetectedSimdLevel());
  {
    ScopedSimdLevel force(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  {
    // Forcing above the hardware clamps to the detected level.
    ScopedSimdLevel force(SimdLevel::kAVX2);
    EXPECT_EQ(ActiveSimdLevel(), DetectedSimdLevel());
  }
  EXPECT_EQ(ParseSimdLevel("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevel("sse42"), SimdLevel::kSSE42);
  EXPECT_EQ(ParseSimdLevel("avx2"), SimdLevel::kAVX2);
  EXPECT_EQ(ParseSimdLevel("native"), DetectedSimdLevel());
  EXPECT_EQ(ParseSimdLevel("bogus"), std::nullopt);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSSE42), "sse42");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAVX2), "avx2");
}

}  // namespace
}  // namespace mrx
