#include <gtest/gtest.h>

#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"

namespace mrx {
namespace {

using mrx::testing::MakeFigure3Graph;
using mrx::testing::MakeGraph;
using mrx::testing::MakeOverqualifiedGraph;
using mrx::testing::RandomGraph;

PathExpression Q(const DataGraph& g, std::string_view text) {
  return std::move(PathExpression::Parse(text, g.symbols())).value();
}

TEST(DkLabelRequirementsTest, TargetLabelGetsFupLength) {
  DataGraph g = MakeFigure3Graph();
  auto kreq = ComputeDkLabelRequirements(g, {Q(g, "//r/a/b")});
  EXPECT_EQ(kreq[*g.symbols().Lookup("b")], 2);
}

TEST(DkLabelRequirementsTest, ConstraintPropagatesToParentLabels) {
  DataGraph g = MakeFigure3Graph();
  auto kreq = ComputeDkLabelRequirements(g, {Q(g, "//r/a/b")});
  // Every label with an edge into b needs at least 1.
  EXPECT_GE(kreq[*g.symbols().Lookup("a")], 1);
  EXPECT_GE(kreq[*g.symbols().Lookup("c")], 1);
  EXPECT_GE(kreq[*g.symbols().Lookup("d")], 1);
  EXPECT_GE(kreq[*g.symbols().Lookup("r")], 0);
}

TEST(DkLabelRequirementsTest, TakesMaxOverFups) {
  DataGraph g = MakeFigure3Graph();
  auto kreq = ComputeDkLabelRequirements(
      g, {Q(g, "//a/b"), Q(g, "//r/a/b")});
  EXPECT_EQ(kreq[*g.symbols().Lookup("b")], 2);
}

TEST(DkConstructTest, OverRefinesIrrelevantIndexNodes) {
  // The §1 lastname example, miniaturized: one FUP targets b under a; the
  // D(k)-construct requirement applies to *all* b nodes, including those
  // only reachable under c and d.
  DataGraph g = MakeFigure3Graph();
  DkIndex dk = DkIndex::Construct(g, {Q(g, "//r/a/b")});
  // Every b index node carries k = 2 even though only {4} needed it.
  for (IndexNodeId v : dk.graph().AliveNodes()) {
    if (dk.graph().node(v).label == *g.symbols().Lookup("b")) {
      EXPECT_EQ(dk.graph().node(v).k, 2);
    }
  }
  EXPECT_TRUE(dk.graph().CheckConsistency().ok());
}

TEST(DkConstructTest, SupportsFupsPrecisely) {
  DataGraph g = RandomGraph(42, 80, 5, 40);
  DataEvaluator eval(g);
  std::vector<PathExpression> fups;
  // Build FUPs from actual label paths so they are non-trivial.
  const SymbolTable& symbols = g.symbols();
  for (LabelId a = 0; a < symbols.size() && fups.size() < 4; ++a) {
    for (LabelId b = 0; b < symbols.size() && fups.size() < 4; ++b) {
      PathExpression p({a, b}, false);
      if (!eval.Evaluate(p).empty()) fups.push_back(p);
    }
  }
  ASSERT_FALSE(fups.empty());
  DkIndex dk = DkIndex::Construct(g, fups);
  for (const PathExpression& p : fups) {
    QueryResult r = dk.Query(p);
    EXPECT_TRUE(r.precise) << p.ToString(symbols);
    EXPECT_EQ(r.answer, eval.Evaluate(p));
  }
}

TEST(DkConstructTest, ExtentsMeetRecordedK) {
  DataGraph g = RandomGraph(47, 60, 4, 25);
  DataEvaluator eval(g);
  std::vector<PathExpression> fups;
  const SymbolTable& symbols = g.symbols();
  for (LabelId a = 0; a < symbols.size() && fups.size() < 3; ++a) {
    for (LabelId b = 0; b < symbols.size() && fups.size() < 3; ++b) {
      for (LabelId c = 0; c < symbols.size() && fups.size() < 3; ++c) {
        PathExpression p({a, b, c}, false);
        if (!eval.Evaluate(p).empty()) fups.push_back(p);
      }
    }
  }
  DkIndex dk = DkIndex::Construct(g, fups);
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(dk.graph()));
  EXPECT_TRUE(mrx::testing::SatisfiesProperty3(dk.graph()));
}

TEST(DkPromoteTest, Figure3OverRefinesIrrelevantDataNodes) {
  // The paper's Figure 3(c): promoting for r/a/b splits the irrelevant b
  // nodes apart as well, because PROMOTE partitions by *every* parent.
  DataGraph g = MakeFigure3Graph();
  DkIndex dk(g);
  dk.Promote(Q(g, "//r/a/b"));
  EXPECT_TRUE(dk.graph().CheckConsistency().ok());
  // b{4} separated, and the irrelevant b's are split by their c/d parents
  // into {5,6} and {7,8,9} — all with k = 2 (over-refined).
  IndexNodeId b4 = dk.graph().index_of(4);
  EXPECT_EQ(dk.graph().node(b4).extent, (std::vector<NodeId>{4}));
  EXPECT_EQ(dk.graph().node(b4).k, 2);
  IndexNodeId b5 = dk.graph().index_of(5);
  EXPECT_EQ(dk.graph().node(b5).extent, (std::vector<NodeId>{5, 6}));
  EXPECT_EQ(dk.graph().node(b5).k, 2);
  IndexNodeId b7 = dk.graph().index_of(7);
  EXPECT_EQ(dk.graph().node(b7).extent, (std::vector<NodeId>{7, 8, 9}));
  // 8 index nodes total: r, a, c, d and three b parts... plus none spare.
  EXPECT_EQ(dk.graph().num_nodes(), 7u);
}

TEST(DkPromoteTest, PromotedFupIsPrecise) {
  DataGraph g = MakeFigure3Graph();
  DataEvaluator eval(g);
  DkIndex dk(g);
  PathExpression p = Q(g, "//r/a/b");
  dk.Promote(p);
  QueryResult r = dk.Query(p);
  EXPECT_TRUE(r.precise);
  EXPECT_EQ(r.answer, (std::vector<NodeId>{4}));
  EXPECT_EQ(r.stats.data_nodes_validated, 0u);
}

TEST(DkPromoteTest, OverqualifiedParentsSplitBisimilarNodes) {
  // The paper's Figure 4 scenario: after a FUP refines the b's to k=2,
  // promoting c to k=1 uses the overqualified b singletons and splits the
  // two 1-bisimilar c nodes apart.
  DataGraph g = MakeOverqualifiedGraph();
  DkIndex dk(g);
  dk.Promote(Q(g, "//r/a/b"));
  // The two b's are split (only node 3 has the r/a prefix).
  ASSERT_NE(dk.graph().index_of(3), dk.graph().index_of(4));
  dk.Promote(Q(g, "//b/c"));
  EXPECT_TRUE(dk.graph().CheckConsistency().ok());
  // Over-refinement: c5 and c6 are 1-bisimilar yet land in different
  // index nodes.
  mrx::testing::ReferenceBisimilarity ref(g);
  EXPECT_TRUE(ref.Bisimilar(5, 6, 1));
  EXPECT_NE(dk.graph().index_of(5), dk.graph().index_of(6));
}

TEST(DkPromoteTest, IdempotentOnSupportedFup) {
  DataGraph g = MakeFigure3Graph();
  DkIndex dk(g);
  PathExpression p = Q(g, "//r/a/b");
  dk.Promote(p);
  size_t nodes = dk.graph().num_nodes();
  dk.Promote(p);
  EXPECT_EQ(dk.graph().num_nodes(), nodes);
}

TEST(DkPromoteTest, ZeroLengthFupIsNoOp) {
  DataGraph g = MakeFigure3Graph();
  DkIndex dk(g);
  size_t nodes = dk.graph().num_nodes();
  dk.Promote(Q(g, "//b"));
  EXPECT_EQ(dk.graph().num_nodes(), nodes);
}

TEST(DkPromoteTest, AnswersStayExactOnRandomGraphs) {
  DataGraph g = RandomGraph(61, 60, 5, 30);
  DataEvaluator eval(g);
  DkIndex dk(g);
  const SymbolTable& symbols = g.symbols();
  std::vector<PathExpression> fups;
  for (LabelId a = 0; a < symbols.size() && fups.size() < 5; ++a) {
    for (LabelId b = 0; b < symbols.size() && fups.size() < 5; ++b) {
      PathExpression p({a, b}, false);
      if (!eval.Evaluate(p).empty()) fups.push_back(p);
    }
  }
  for (const PathExpression& p : fups) {
    dk.Promote(p);
    ASSERT_TRUE(dk.graph().CheckConsistency().ok());
  }
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(dk.graph()));
  for (const PathExpression& p : fups) {
    QueryResult r = dk.Query(p);
    EXPECT_TRUE(r.precise) << p.ToString(symbols);
    EXPECT_EQ(r.answer, eval.Evaluate(p));
  }
}

}  // namespace
}  // namespace mrx
