#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mutate/mutation.h"
#include "server/answer_cache.h"
#include "server/concurrent_session.h"
#include "tests/test_util.h"

namespace mrx::server {
namespace {

using mrx::testing::MakeFigure3Graph;

CachedAnswerPtr MakeEntry(std::vector<NodeId> answer) {
  QueryResult r;
  r.answer = std::move(answer);
  return ShardedAnswerCache::Wrap(r);
}

uint64_t TotalStaleDrops(const ShardedAnswerCache& cache) {
  uint64_t total = 0;
  for (const auto& shard : cache.PerShardStats()) {
    total += shard.stale_drops;
  }
  return total;
}

/// The invariant under test: an answer computed under epoch E is never
/// served once epoch E+1 has been published. Both halves matter — entries
/// cached before the publish are cleared, and racing inserts tagged with
/// the old epoch are rejected instead of repopulating the fresh cache.

TEST(AnswerCacheEpochTest, InvalidateClearsCachedAnswers) {
  ShardedAnswerCache cache(64, 4);
  cache.Put("q1", MakeEntry({1, 2}), /*epoch=*/0);
  CachedAnswerPtr out = cache.Get("q1");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->answer, (std::vector<NodeId>{1, 2}));

  cache.Invalidate(/*new_epoch=*/1);
  EXPECT_EQ(cache.Get("q1"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // The handle outlives the invalidation: entries are immutable.
  EXPECT_EQ(out->answer, (std::vector<NodeId>{1, 2}));
}

TEST(AnswerCacheEpochTest, StalePutAfterInvalidateIsDropped) {
  ShardedAnswerCache cache(64, 4);
  // The race: a reader computes under epoch 0, the refiner publishes
  // (epoch 1), then the reader's insert lands.
  cache.Invalidate(/*new_epoch=*/1);
  EXPECT_EQ(TotalStaleDrops(cache), 0u);
  cache.Put("q1", MakeEntry({1}), /*epoch=*/0);
  EXPECT_EQ(cache.Get("q1"), nullptr);
  EXPECT_EQ(TotalStaleDrops(cache), 1u);

  // A current-epoch insert for the same key is admitted.
  cache.Put("q1", MakeEntry({2}), /*epoch=*/1);
  CachedAnswerPtr out = cache.Get("q1");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->answer, (std::vector<NodeId>{2}));
  EXPECT_EQ(TotalStaleDrops(cache), 1u);
}

TEST(AnswerCacheEpochTest, EveryEpochTransitionRejectsTheOldTag) {
  ShardedAnswerCache cache(64, 1);  // One shard: deterministic stats.
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    cache.Invalidate(epoch);
    cache.Put("k" + std::to_string(epoch), MakeEntry({1}), epoch - 1);
  }
  EXPECT_EQ(TotalStaleDrops(cache), 5u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCacheEpochTest, SessionNeverServesStaleAnswersAcrossPublishes) {
  const DataGraph g = MakeFigure3Graph();
  ConcurrentSessionOptions options;
  options.refine_after = 2;
  ConcurrentSession session(g, options);

  Result<PathExpression> q = PathExpression::Parse("//a/b", g.symbols());
  ASSERT_TRUE(q.ok());
  const std::vector<NodeId> expected = session.Peek(*q).answer;

  // Drive the query hot so it becomes a FUP, forcing refinements and
  // publications (epoch bumps) between repeated cached lookups.
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(session.Query(*q).answer, expected) << "round " << round;
    session.DrainRefinements();
  }
  EXPECT_GT(session.index_publications(), 0u);
  // After the final publish the cache was invalidated; the next Query
  // recomputes on the refined index and must still agree.
  EXPECT_EQ(session.Query(*q).answer, expected);
}

/// The mutation half of the invariant (satellite of the live-update
/// subsystem): a cached answer must not survive a graph mutation that
/// changed it. Before snapshots carried the epoch through ApplyMutations,
/// the second Query below would happily serve {4} from the cache.
TEST(AnswerCacheEpochTest, MutationInvalidatesCachedAnswers) {
  const DataGraph g = MakeFigure3Graph();
  ConcurrentSession session(g);

  Result<PathExpression> q = PathExpression::Parse("/r/a/b", g.symbols());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(session.Query(*q).answer, (std::vector<NodeId>{4}));
  EXPECT_EQ(session.Query(*q).answer, (std::vector<NodeId>{4}));
  EXPECT_GE(session.cache_hits(), 1u);  // The answer is in the cache.

  const uint64_t epoch_before = session.index_epoch();
  auto receipt =
      session.ApplyMutations({mutate::Mutation::AppendLeaf(1, "b")});
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_GT(receipt->epoch, epoch_before);
  EXPECT_EQ(receipt->batch.version, 1u);

  // The new "b" under the "a" (compact id 10: appends go to the end) must
  // show up — a stale cache hit would still say {4}.
  EXPECT_EQ(session.Query(*q).answer, (std::vector<NodeId>{4, 10}));
  ConcurrentSession::VersionedAnswer versioned = session.QueryVersioned(*q);
  EXPECT_EQ(versioned.result.answer, (std::vector<NodeId>{4, 10}));
  EXPECT_EQ(versioned.graph_version, 1u);
  EXPECT_GE(versioned.epoch, receipt->epoch);
}

}  // namespace
}  // namespace mrx::server
