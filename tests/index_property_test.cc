// Property-based sweep across all five indexes on random cyclic graphs:
// every index must stay *safe and exact* for every query, the adaptive
// indexes must be *precise* for every refined FUP, and the structural
// invariants of §3/§4 must survive arbitrary refinement sequences.

#include <gtest/gtest.h>

#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/label_paths.h"

namespace mrx {
namespace {

using mrx::testing::RandomGraph;

struct SweepCase {
  uint64_t seed;
  size_t nodes;
  size_t labels;
  size_t extra_edges;
};

class IndexSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  /// A workload of genuine label paths of the random graph.
  static std::vector<PathExpression> MakeWorkload(const DataGraph& g,
                                                  uint64_t seed,
                                                  size_t count,
                                                  size_t max_len) {
    LabelPathEnumerationOptions enum_options;
    enum_options.max_length = max_len;
    enum_options.max_paths = 5000;
    LabelPathSet paths = EnumerateLabelPaths(g, enum_options);
    WorkloadOptions options;
    options.num_queries = count;
    options.max_query_length = max_len;
    options.seed = seed;
    return GenerateWorkload(paths, options);
  }
};

TEST_P(IndexSweepTest, AkFamilyIsExactEverywhere) {
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  DataEvaluator eval(g);
  auto workload = MakeWorkload(g, c.seed + 1, 25, 4);
  for (int k = 0; k <= 3; ++k) {
    AkIndex index(g, k);
    for (const PathExpression& q : workload) {
      ASSERT_EQ(index.Query(q).answer, eval.Evaluate(q))
          << "k=" << k << " q=" << q.ToString(g.symbols());
    }
  }
  OneIndex one(g);
  for (const PathExpression& q : workload) {
    ASSERT_EQ(one.Query(q).answer, eval.Evaluate(q));
    EXPECT_TRUE(one.Query(q).precise);
  }
}

TEST_P(IndexSweepTest, MkRefinementSequenceKeepsAllInvariants) {
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  DataEvaluator eval(g);
  auto workload = MakeWorkload(g, c.seed + 2, 20, 4);

  MkIndex index(g);
  std::vector<PathExpression> refined;
  for (const PathExpression& q : workload) {
    index.Refine(q);
    refined.push_back(q);
    ASSERT_TRUE(index.graph().CheckConsistency().ok())
        << index.graph().CheckConsistency();
    ASSERT_TRUE(mrx::testing::SatisfiesProperty3(index.graph()));
    // Every refined FUP so far stays precise and exact.
    for (const PathExpression& p : refined) {
      QueryResult r = index.Query(p);
      ASSERT_EQ(r.answer, eval.Evaluate(p)) << p.ToString(g.symbols());
      ASSERT_TRUE(r.precise) << p.ToString(g.symbols());
    }
  }
  // Property 1 (the expensive oracle check) once at the end.
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()));
  // And arbitrary other queries remain exact (validation catches them).
  for (const PathExpression& q : MakeWorkload(g, c.seed + 3, 15, 4)) {
    EXPECT_EQ(index.Query(q).answer, eval.Evaluate(q));
  }
}

TEST_P(IndexSweepTest, DkPromoteSequenceStaysExact) {
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  DataEvaluator eval(g);
  auto workload = MakeWorkload(g, c.seed + 4, 15, 4);

  DkIndex index(g);
  for (const PathExpression& q : workload) {
    index.Promote(q);
    ASSERT_TRUE(index.graph().CheckConsistency().ok());
  }
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()));
  EXPECT_TRUE(mrx::testing::SatisfiesProperty3(index.graph()));
  for (const PathExpression& q : workload) {
    QueryResult r = index.Query(q);
    ASSERT_EQ(r.answer, eval.Evaluate(q)) << q.ToString(g.symbols());
    ASSERT_TRUE(r.precise) << q.ToString(g.symbols());
  }
}

TEST_P(IndexSweepTest, DkConstructSupportsWholeWorkload) {
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  DataEvaluator eval(g);
  auto workload = MakeWorkload(g, c.seed + 5, 15, 4);
  DkIndex index = DkIndex::Construct(g, workload);
  ASSERT_TRUE(index.graph().CheckConsistency().ok());
  EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.graph()));
  for (const PathExpression& q : workload) {
    QueryResult r = index.Query(q);
    ASSERT_EQ(r.answer, eval.Evaluate(q)) << q.ToString(g.symbols());
    ASSERT_TRUE(r.precise) << q.ToString(g.symbols());
  }
}

TEST_P(IndexSweepTest, MStarRefinementSequenceKeepsAllInvariants) {
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  DataEvaluator eval(g);
  auto workload = MakeWorkload(g, c.seed + 6, 15, 4);

  MStarIndex index(g);
  std::vector<PathExpression> refined;
  for (const PathExpression& q : workload) {
    index.Refine(q);
    refined.push_back(q);
    ASSERT_TRUE(index.CheckProperties().ok())
        << index.CheckProperties() << " after " << q.ToString(g.symbols());
    for (const PathExpression& p : refined) {
      QueryResult naive = index.QueryNaive(p);
      QueryResult topdown = index.QueryTopDown(p);
      ASSERT_EQ(naive.answer, eval.Evaluate(p)) << p.ToString(g.symbols());
      ASSERT_EQ(topdown.answer, naive.answer) << p.ToString(g.symbols());
      ASSERT_TRUE(naive.precise) << p.ToString(g.symbols());
    }
  }
  for (size_t i = 0; i < index.num_components(); ++i) {
    EXPECT_TRUE(mrx::testing::ExtentsAreKBisimilar(index.component(i)))
        << "component " << i;
  }
  // Fresh queries (not refined) stay exact through validation, under all
  // three strategies.
  for (const PathExpression& q : MakeWorkload(g, c.seed + 7, 10, 4)) {
    std::vector<NodeId> expected = eval.Evaluate(q);
    EXPECT_EQ(index.QueryNaive(q).answer, expected);
    EXPECT_EQ(index.QueryTopDown(q).answer, expected);
    if (q.num_steps() >= 2) {
      EXPECT_EQ(index.QueryWithPrefilter(q, 1, q.num_steps() - 1).answer,
                expected);
    }
  }
}

TEST_P(IndexSweepTest, AdaptiveIndexSizesOrderSensibly) {
  // The paper's headline size result: M(k) out-compacts D(k)-promote on
  // the same FUP sequence (both start from A(0); M(k) merges irrelevant
  // pieces, D(k) does not). This is an experimental claim, not a
  // per-instance theorem — separating the remainder can occasionally cost
  // one extra node — so allow a 10% slack here; the Figure 3 unit test
  // asserts the strict contrast on the paper's own example, and the bench
  // suite shows the aggregate gap on XMark/NASA.
  const SweepCase& c = GetParam();
  DataGraph g = RandomGraph(c.seed, c.nodes, c.labels, c.extra_edges);
  auto workload = MakeWorkload(g, c.seed + 8, 15, 4);
  MkIndex mk(g);
  DkIndex dk(g);
  for (const PathExpression& q : workload) {
    mk.Refine(q);
    dk.Promote(q);
  }
  EXPECT_LE(mk.graph().num_nodes(),
            dk.graph().num_nodes() + dk.graph().num_nodes() / 10 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, IndexSweepTest,
    ::testing::Values(SweepCase{1, 30, 3, 15}, SweepCase{2, 40, 4, 20},
                      SweepCase{3, 50, 5, 10}, SweepCase{4, 60, 4, 30},
                      SweepCase{5, 25, 2, 20}, SweepCase{6, 45, 6, 25},
                      SweepCase{7, 35, 3, 35}, SweepCase{8, 55, 5, 15}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mrx
